package core

// This file implements model-sweep groups: RunSuite jobs that are
// identical in everything but Model are checked on one shared
// selector-guarded encoding (encode.NewSweepWithConfig +
// spec.SweepCheck) instead of independently. Everything
// model-independent is paid once per group — harness build, loop
// unrolling, range analysis, specification mining, circuit
// construction, CNF translation and preprocessing, bound probing —
// and each model's verdict is a pair of solves under assumption
// literals on the shared solver, with learned clauses carried across
// the whole sweep. Verdict semantics are identical to independent
// checks; the differential guarantees are enforced by TestSweepAblation
// and the sweep bench harness.

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"checkfence/internal/encode"
	"checkfence/internal/harness"
	"checkfence/internal/memmodel"
	"checkfence/internal/ranges"
	"checkfence/internal/sat"
	"checkfence/internal/spec"
	"checkfence/internal/trace"
	"checkfence/internal/validate"
)

// SweepMode controls model-sweep grouping.
type SweepMode int

const (
	// SweepAuto (the zero value) lets a job join a sweep group when
	// the suite sweeps and a compatible group exists.
	SweepAuto SweepMode = iota
	// SweepOff always checks the job independently.
	SweepOff
)

func (m SweepMode) String() string {
	if m == SweepOff {
		return "off"
	}
	return "auto"
}

// ParseSweepMode converts a CLI flag value to a SweepMode.
func ParseSweepMode(s string) (SweepMode, error) {
	switch s {
	case "", "auto", "on":
		return SweepAuto, nil
	case "off":
		return SweepOff, nil
	}
	return 0, fmt.Errorf("core: unknown sweep mode %q (want auto, on, or off)", s)
}

// frontCache memoizes the model-independent front end of a check —
// harness.Build and the per-bounds Unroll — across the members and
// rounds of one sweep group, including members that fall back to
// independent checks. The results are treated as immutable by every
// consumer (the regular pipeline already reuses one Built across
// bound rounds).
type frontCache struct {
	mu       sync.Mutex
	built    *harness.Built
	unrolled map[string]*harness.Unrolled
	hits     int
}

func boundsKey(bounds map[string]int) string {
	keys := make([]string, 0, len(bounds))
	for k := range bounds {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d;", k, bounds[k])
	}
	return b.String()
}

func (f *frontCache) build(impl *harness.Impl, test *harness.Test) (*harness.Built, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.built != nil {
		f.hits++
		return f.built, nil
	}
	built, err := harness.Build(impl, test)
	if err != nil {
		return nil, err
	}
	f.built = built
	return built, nil
}

func (f *frontCache) unroll(built *harness.Built, bounds map[string]int) (*harness.Unrolled, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := boundsKey(bounds)
	if u, ok := f.unrolled[key]; ok {
		f.hits++
		return u, nil
	}
	u, err := built.Unroll(bounds)
	if err != nil {
		return nil, err
	}
	if f.unrolled == nil {
		f.unrolled = map[string]*harness.Unrolled{}
	}
	f.unrolled[key] = u
	return u, nil
}

// buildHarness and unrollHarness route the pipeline's front end
// through the sweep group's cache when one is attached.
func (o Options) buildHarness(impl *harness.Impl, test *harness.Test) (*harness.Built, error) {
	if o.front != nil {
		return o.front.build(impl, test)
	}
	return harness.Build(impl, test)
}

func (o Options) unrollHarness(built *harness.Built, bounds map[string]int) (*harness.Unrolled, error) {
	if o.front != nil {
		return o.front.unroll(built, bounds)
	}
	return built.Unroll(bounds)
}

// sweepEligible reports whether a job may join a sweep group at all.
// Serial is excluded structurally (its seriality axioms and operation
// merge classes reshape the encoding); a forced rf backend never
// touches SAT; fault injection is per-check machinery the shared
// pipeline must not multiplex.
func sweepEligible(o Options) bool {
	// Cube assumptions (cross-process fan-out) target one model's
	// inclusion encoding; a shared sweep encoding would apply the cube
	// to every member, so such jobs check independently.
	return o.Sweep != SweepOff && o.Model != memmodel.Serial &&
		o.Backend != BackendRF && o.Faults == nil && len(o.Assume) == 0
}

// sweepFingerprint renders every Options field except Model into a
// grouping key: two jobs sweep together only when nothing but the
// model distinguishes them. Pointer-typed fields group by identity —
// conservative (equal contents behind distinct pointers do not group)
// and therefore always sound.
func sweepFingerprint(o Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "be=%d ra=%t src=%d spec=%p mbr=%d pf=%d shc=%t cube=%d mmi=%d "+
		"simp=%d nopre=%t noinp=%t noord=%t vt=%d dl=%d cb=%d mem=%d cache=%p cancel=%p",
		o.Backend, o.DisableRangeAnalysis, o.SpecSource, o.Spec, o.MaxBoundRounds,
		o.Portfolio, o.ShareClauses, o.Cube, o.MaxMineIterations,
		o.SimplifyLevel, o.NoPreprocess, o.NoInprocess, o.NoOrderReduce,
		o.ValidateTraces, o.Deadline, o.ConflictBudget, o.MemBudgetMB,
		o.SpecCache, o.Cancel)
	keys := make([]string, 0, len(o.InitialBounds))
	for k := range o.InitialBounds {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " ib:%s=%d", k, o.InitialBounds[k])
	}
	for _, r := range o.Ladder {
		fmt.Fprintf(&b, " rung=%+v", r)
	}
	for _, a := range o.Assume {
		fmt.Fprintf(&b, " asm=%d", a)
	}
	return b.String()
}

// sweepGroup is one scheduled sweep: a set of suite jobs over the same
// (impl, test, options) differing only in model.
type sweepGroup struct {
	implName, testName string
	// implRef/testRef carry the group's resolved structures when its
	// jobs supplied them (inline programs); nil means the names
	// resolve through the harness registry.
	implRef *harness.Impl
	testRef *harness.Test
	// models holds the group's distinct models, strongest-first —
	// the sweep order monotonic seeding and early-exit rely on.
	models []memmodel.Model
	// jobs maps each model to the suite job indices it serves (more
	// than one when a suite repeats a job verbatim).
	jobs map[memmodel.Model][]int
	// opts is the shared option template (Model set to the strongest
	// member, front to the group's cache).
	opts Options
}

// suiteUnit is one work item of RunSuite's pool: a single job or a
// whole sweep group.
type suiteUnit struct {
	single int // job index; -1 for a group
	group  *sweepGroup
}

// planUnits partitions the suite's jobs into schedulable units. eff
// holds each job's effective options (after the suite injected cache,
// cancellation, and faults) — grouping must see what will actually
// run. Groups need at least two distinct models; everything else
// stays an independent unit in original job order.
func planUnits(jobs []Job, eff []Options, sweepOn bool) []suiteUnit {
	type proto struct {
		firstIdx int
		indices  []int
	}
	protos := map[string]*proto{}
	var order []string
	grouped := make([]bool, len(jobs))
	if sweepOn {
		for i, job := range jobs {
			if !sweepEligible(eff[i]) {
				continue
			}
			// Resolved references group by pointer identity: two inline
			// programs sweep together only when they are literally the
			// same structure, which is conservative and always sound
			// (registry-resolved jobs have nil refs and group by name).
			key := fmt.Sprintf("%s\x00%s\x00%p\x00%p\x00%s",
				job.Impl, job.Test, job.ImplRef, job.TestRef, sweepFingerprint(eff[i]))
			p := protos[key]
			if p == nil {
				p = &proto{firstIdx: i}
				protos[key] = p
				order = append(order, key)
			}
			p.indices = append(p.indices, i)
			grouped[i] = true
		}
	}
	type slot struct {
		pos  int
		unit suiteUnit
	}
	var slots []slot
	for _, key := range order {
		p := protos[key]
		byModel := map[memmodel.Model][]int{}
		var models []memmodel.Model
		for _, idx := range p.indices {
			m := eff[idx].Model
			if len(byModel[m]) == 0 {
				models = append(models, m)
			}
			byModel[m] = append(byModel[m], idx)
		}
		if len(models) < 2 {
			// Nothing to sweep; the members run independently.
			for _, idx := range p.indices {
				grouped[idx] = false
			}
			continue
		}
		sort.Slice(models, func(i, j int) bool {
			a, b := models[i], models[j]
			return a.StrongerThan(b) && !b.StrongerThan(a)
		})
		opts := eff[byModel[models[0]][0]]
		opts.Model = models[0]
		slots = append(slots, slot{pos: p.firstIdx, unit: suiteUnit{
			single: -1,
			group: &sweepGroup{
				implName: jobs[p.firstIdx].Impl,
				testName: jobs[p.firstIdx].Test,
				implRef:  jobs[p.firstIdx].ImplRef,
				testRef:  jobs[p.firstIdx].TestRef,
				models:   models,
				jobs:     byModel,
				opts:     opts,
			},
		}})
	}
	for i := range jobs {
		if !grouped[i] {
			slots = append(slots, slot{pos: i, unit: suiteUnit{single: i}})
		}
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i].pos < slots[j].pos })
	units := make([]suiteUnit, len(slots))
	for i, s := range slots {
		units[i] = s.unit
	}
	return units
}

// modelOutcome is one model's result within a group run.
type modelOutcome struct {
	res *Result
	err error
}

// memberJob renders the group as a Job so fallback members and the
// shared attempt resolve the implementation and test exactly like an
// independent check would.
func (g *sweepGroup) memberJob() Job {
	return Job{Impl: g.implName, Test: g.testName, ImplRef: g.implRef, TestRef: g.testRef}
}

// safeCheckMember runs one fallback member independently under the
// group's front cache and panic isolation.
func (g *sweepGroup) safeCheckMember(opts Options) (*Result, error) {
	return safeCheck(g.memberJob(), opts)
}

// errSweepFallback routes a whole group to independent checks without
// signalling a failure: the router picked the polynomial reads-from
// path, which is per-model and has no SAT work to amortize.
var errSweepFallback = errors.New("core: sweep group routed to independent checks")

// run checks every model of the group. Models the shared attempt
// cannot decide — a degradable failure (budget, solver Unknown,
// recovered panic) or the rf routing — fall back to independent
// CheckImpl runs with the full degradation ladder, still sharing the
// group's front cache; a non-degradable failure becomes every
// undecided model's error.
func (g *sweepGroup) run() map[memmodel.Model]*modelOutcome {
	start := time.Now()
	outs := make(map[memmodel.Model]*modelOutcome, len(g.models))
	front := &frontCache{}
	g.opts.front = front

	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)

	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("core: sweep group %s/%s panicked: %w",
					g.implName, g.testName, sat.RecoverAsError(p))
			}
		}()
		return g.attempt(outs, start)
	}()

	// Every sweep-produced result reports the group's wall-clock time:
	// the models were decided together, so per-model attribution of the
	// shared phases would be arbitrary. The heap growth of the whole
	// group lands on the leader with the other shared costs.
	wall := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	for _, o := range outs {
		if o.res != nil && o.res.Stats.SweepGroups == 1 {
			o.res.Stats.TotalTime = wall
		}
	}
	if o := outs[g.models[0]]; o != nil && o.res != nil && o.res.Stats.SweepGroups == 1 {
		o.res.Stats.AllocBytes = memAfter.TotalAlloc - memBefore.TotalAlloc
	}

	if err != nil {
		fallback := errors.Is(err, errSweepFallback) || degradable(err, g.opts)
		for _, m := range g.models {
			if _, ok := outs[m]; ok {
				continue
			}
			if !fallback {
				outs[m] = &modelOutcome{err: err}
				continue
			}
			o := g.opts
			o.Model = m
			// Fallback deadlines are carved from the group's remaining
			// absolute budget: the shared attempt already consumed part
			// of the user's window, and a fresh per-member window would
			// let the unit exceed the configured deadline by up to a
			// factor of the member count in wall clock. An exhausted
			// window degrades to a minimal one so the member still
			// resolves to a verdict (UNKNOWN with a report), never an
			// error or a hang.
			if o.Deadline > 0 {
				remaining := o.Deadline - time.Since(start)
				if remaining < time.Millisecond {
					remaining = time.Millisecond
				}
				o.Deadline = remaining
			}
			res, cerr := g.safeCheckMember(o)
			outs[m] = &modelOutcome{res: res, err: cerr}
		}
	}
	if o := outs[g.models[0]]; o != nil && o.res != nil {
		o.res.Stats.FrontCacheHits = front.hits
	}
	return outs
}

// attempt runs the shared pipeline once with the configured strategy,
// mirroring checkAttempt's structure: check at the initial bounds,
// probe bounds under the shared probe model, and re-check the still
// undecided models at the converged bounds. Decided models are
// recorded in outs as the rounds progress.
func (g *sweepGroup) attempt(outs map[memmodel.Model]*modelOutcome, start time.Time) error {
	opts := g.opts
	if opts.MaxBoundRounds <= 0 {
		opts.MaxBoundRounds = 12
	}
	var deadline time.Time
	if opts.Deadline > 0 {
		deadline = start.Add(opts.Deadline)
	}
	impl, test, err := g.memberJob().resolve()
	if err != nil {
		return err
	}
	built, err := opts.buildHarness(impl, test)
	if err != nil {
		return err
	}
	bounds := map[string]int{}
	for k, v := range opts.InitialBounds {
		bounds[k] = v
	}
	unrolled, err := opts.unrollHarness(built, bounds)
	if err != nil {
		return err
	}
	info := analysisFor(unrolled, opts)

	// One routing decision serves the whole group: routeRF inspects
	// the backend selection and the unrolled program, never the model.
	// When the polynomial path wins there is no SAT work to amortize.
	if dec := routeRF(opts, unrolled); dec.useRF {
		return errSweepFallback
	}

	pending := append([]memmodel.Model(nil), g.models...)
	provisional, err := g.sweepRound(outs, pending, impl, test, built, unrolled, info,
		bounds, opts, deadline, 1)
	if err != nil {
		return err
	}
	pending = pendingModels(pending, outs)
	if len(pending) == 0 {
		return nil
	}

	// Bound probing, shared: every non-Serial swept model probes under
	// the same model (probeModel maps everything at or below SC to SC),
	// so one probe sequence serves the whole group.
	var probeTime time.Duration
	grewAny := false
	boundRounds := 1
	for round := 0; ; round++ {
		if round >= opts.MaxBoundRounds {
			return fmt.Errorf("core: loop bounds did not converge after %d rounds", round)
		}
		probeStart := time.Now()
		grew, err := probeBounds(unrolled, info, probeModel(pending[0]), bounds, opts, deadline)
		probeTime += time.Since(probeStart)
		if err != nil {
			return err
		}
		if !grew {
			break
		}
		grewAny = true
		boundRounds = round + 2
		unrolled, err = opts.unrollHarness(built, bounds)
		if err != nil {
			return err
		}
		info = analysisFor(unrolled, opts)
	}
	if grewAny {
		provisional, err = g.sweepRound(outs, pending, impl, test, built, unrolled, info,
			bounds, opts, deadline, boundRounds)
		if err != nil {
			return err
		}
		pending = pendingModels(pending, outs)
	}
	// Whatever is still undecided passed at the converged bounds; its
	// provisional result is final (exactly checkAttempt's "initial
	// bounds were already sufficient" path when no bound grew).
	for _, m := range pending {
		res := provisional[m]
		res.Verdict = VerdictPass
		res.Stats.ProbeTime = 0
		outs[m] = &modelOutcome{res: res}
	}
	// Shared probe time is a group cost like mining and encoding:
	// attribute it once, to the group leader (the strongest model).
	// Landing it on the first still-pending model instead would make
	// the carrier depend on early-exit order and let suite-level
	// aggregation double-count or drop it across groups; every model
	// of the group is in outs by this point, so the leader always
	// carries it.
	if o := outs[g.models[0]]; o != nil && o.res != nil {
		o.res.Stats.ProbeTime += probeTime
	}
	return nil
}

func pendingModels(models []memmodel.Model, outs map[memmodel.Model]*modelOutcome) []memmodel.Model {
	var out []memmodel.Model
	for _, m := range models {
		if _, ok := outs[m]; !ok {
			out = append(out, m)
		}
	}
	return out
}

// replayUnder re-checks previously decoded counterexample traces of
// stronger models under model m's axioms: model strength
// (memmodel.StrongerThan) makes every stronger-model execution a
// candidate weaker-model execution, and the independent validator is
// the judge. The first trace that validates is returned as a shallow
// copy relabeled to m; nil means m must be solved. Validation here is
// the verdict source, so it runs regardless of Options.ValidateTraces.
func replayUnder(m memmodel.Model, traces []*trace.Trace,
	built *harness.Built, unrolled *harness.Unrolled) *trace.Trace {
	for _, t := range traces {
		cp := *t
		cp.Model = m
		if validate.Check(&cp, unrolled.Threads, built.Unit.Prog) == nil {
			return &cp
		}
	}
	return nil
}

// sweepRound mines, encodes, and runs both inclusion phases for the
// pending models at the current bounds. Models that fail are recorded
// in outs; models that pass at these bounds are returned provisionally
// (the caller decides whether bounds must still grow). Shared costs —
// mining, encoding, preprocessing, solver counters — are attributed to
// the round's leader (the strongest pending model); per-model solve
// time lands on each model's own result.
func (g *sweepGroup) sweepRound(outs map[memmodel.Model]*modelOutcome,
	pending []memmodel.Model, impl *harness.Impl, test *harness.Test,
	built *harness.Built, unrolled *harness.Unrolled, info *ranges.Info,
	bounds map[string]int, opts Options, deadline time.Time,
	boundRounds int) (map[memmodel.Model]*Result, error) {

	results := make(map[memmodel.Model]*Result, len(pending))
	for i, m := range pending {
		res := &Result{Impl: impl.Name, Test: test.Name, Model: m}
		st := &res.Stats
		st.Instrs, st.Loads, st.Stores = unrolled.Instrs, unrolled.Loads, unrolled.Stores
		st.BoundRounds = boundRounds
		st.Backend = "sat"
		st.RouterDecision = "sat (model sweep)"
		st.SweepGroups = 1
		st.SweepModels = len(g.models)
		if i > 0 {
			st.EncodesReused = 1
		}
		results[m] = res
	}
	leader := pending[0]
	leaderRes := results[leader]

	var pstats spec.ParStats
	defer func() {
		st := &leaderRes.Stats
		st.Cubes += pstats.Cubes
		st.CubesRefuted += pstats.CubesRefuted
		st.SharedExported += pstats.SharedExported
		st.SharedImported += pstats.SharedImported
		st.SharedUseful += pstats.SharedUseful
		st.VivifiedClauses += pstats.VivifiedClauses
		st.VivifiedLits += pstats.VivifiedLits
		st.SubsumedLearnts += pstats.SubsumedLearnts
		st.ChronoBacktracks += pstats.ChronoBacktracks
	}()

	// Specification: mined once for the whole group (the observation
	// set is model-independent, §3.2).
	mineStart := time.Now()
	set, seqTrace, err := mineSpec(impl, test, built, unrolled, info, bounds,
		opts, deadline, &pstats, leaderRes)
	leaderRes.Stats.MineTime += time.Since(mineStart)
	if err != nil {
		return nil, err
	}
	if seqTrace != nil {
		// A sequential bug is model-independent: every member fails
		// with the same serial trace, validated once.
		if err := validateCex(seqTrace, built, unrolled, opts); err != nil {
			return nil, err
		}
		for _, m := range pending {
			res := results[m]
			res.SeqBug = true
			res.Pass = false
			res.Verdict = VerdictFail
			res.Cex = seqTrace
			outs[m] = &modelOutcome{res: res}
		}
		return map[memmodel.Model]*Result{}, nil
	}
	for i, m := range pending {
		res := results[m]
		res.Spec = set
		res.Stats.ObsSetSize = set.Len()
		if i > 0 {
			// The spec's exclusion clauses are shared, not re-encoded:
			// each non-leader model reuses all of them.
			res.Stats.SeededObs = set.Len()
		}
	}

	// Shared encoding: one circuit and one preprocessed CNF for every
	// pending model, selector-guarded.
	encodeStart := time.Now()
	enc, err := encode.NewSweepWithConfig(pending, info, opts.encodeConfig())
	if err != nil {
		return nil, err
	}
	applyLimits(enc, opts, deadline)
	if err := enc.Encode(unrolled.Threads); err != nil {
		return nil, err
	}
	enc.AssertNoOverflow()
	leaderRes.Stats.EncodeTime += time.Since(encodeStart)

	strat := opts.solveStrategy(enc, &pstats, leaderRes)
	ppStart := time.Now()
	sc, err := spec.NewSweepCheck(enc, built.Entries)
	leaderRes.Stats.RefuteTime += time.Since(ppStart)
	if err != nil {
		return nil, err
	}

	fail := func(m memmodel.Model, t *trace.Trace, earlyExit bool) {
		res := results[m]
		res.Pass = false
		res.Verdict = VerdictFail
		res.Cex = t
		if earlyExit {
			res.Stats.SweepEarlyExit = 1
		}
		outs[m] = &modelOutcome{res: res}
	}

	// Phase 1 for every pending model, strongest-first, before any
	// exclusion clause exists (see spec.SweepCheck). An error trace of
	// a stronger model that replays under a weaker model's axioms
	// decides the weaker model without touching the solver.
	var errTraces []*trace.Trace
	decided := map[memmodel.Model]bool{}
	for _, m := range pending {
		if t := replayUnder(m, errTraces, built, unrolled); t != nil {
			fail(m, t, true)
			decided[m] = true
			continue
		}
		solveStart := time.Now()
		cex, err := sc.ErrorCheck(m, strat)
		results[m].Stats.RefuteTime += time.Since(solveStart)
		if err != nil {
			return nil, err
		}
		if cex == nil {
			continue
		}
		t := trace.Build(enc, built, unrolled, cex)
		t.Model = m
		if err := validateCex(t, built, unrolled, opts); err != nil {
			return nil, err
		}
		errTraces = append(errTraces, t)
		fail(m, t, false)
		decided[m] = true
	}

	if len(decided) < len(pending) {
		bi := time.Now()
		if err := sc.BeginInclusion(set); err != nil {
			return nil, err
		}
		leaderRes.Stats.RefuteTime += time.Since(bi)

		// Phase 2, strongest-first, with the same monotonic early
		// exit: a stronger model's out-of-spec execution that replays
		// under a weaker model is that model's counterexample.
		var cexTraces []*trace.Trace
		for _, m := range pending {
			if decided[m] {
				continue
			}
			if t := replayUnder(m, cexTraces, built, unrolled); t != nil {
				fail(m, t, true)
				decided[m] = true
				continue
			}
			solveStart := time.Now()
			cex, err := sc.Inclusion(m, strat)
			results[m].Stats.RefuteTime += time.Since(solveStart)
			if err != nil {
				return nil, err
			}
			if cex == nil {
				results[m].Pass = true // provisional: bounds may grow
				continue
			}
			t := trace.Build(enc, built, unrolled, cex)
			t.Model = m
			if err := validateCex(t, built, unrolled, opts); err != nil {
				return nil, err
			}
			cexTraces = append(cexTraces, t)
			fail(m, t, false)
			decided[m] = true
		}
	}

	// Solver and formula statistics of the shared encoding land on the
	// leader; the selector instrumentation sizes land on every member.
	st := enc.S.Stats()
	ls := &leaderRes.Stats
	ls.CNFVars = st.Vars
	ls.CNFClauses = st.Clauses
	ls.SolverStats = st
	ls.Gates = enc.B.NumGates()
	ls.PreCNFVars = st.PreVars
	ls.PreCNFClauses = st.PreClauses
	ls.VarsEliminated = st.VarsEliminated
	ls.ClausesSubsumed = st.ClausesSubsumed
	ls.ClausesStrengthened = st.ClausesStrengthened
	ls.PreprocessTime = st.PreprocessTime
	ls.VivifiedClauses += st.VivifiedClauses
	ls.VivifiedLits += st.VivifiedLits
	ls.SubsumedLearnts += st.SubsumedLearnts
	ls.ChronoBacktracks += st.ChronoBacktracks
	ls.TierCore = st.TierCore
	ls.TierMid = st.TierMid
	ls.TierLocal = st.TierLocal
	ls.OrderVarsFixed = enc.OrderVarsFixed
	ls.OrderVarsMerged = enc.OrderVarsMerged
	if st.PreClauses == 0 {
		ls.PreCNFVars = st.Vars
		ls.PreCNFClauses = st.Clauses
	}
	for _, m := range pending {
		results[m].Stats.SelectorVars = len(pending)
		results[m].Stats.SelectorUnits = enc.SelectorUnits
	}

	provisional := make(map[memmodel.Model]*Result, len(pending))
	for _, m := range pending {
		if !decided[m] {
			provisional[m] = results[m]
		}
	}
	return provisional, nil
}

package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"checkfence/internal/faultinject"
	"checkfence/internal/lsl"
	"checkfence/internal/memmodel"
	"checkfence/internal/sat"
	"checkfence/internal/spec"
)

// TestLadderDefault pins the shape of the derived degradation ladder.
func TestLadderDefault(t *testing.T) {
	names := func(rungs []Rung) string {
		var parts []string
		for _, r := range rungs {
			parts = append(parts, r.Name)
		}
		return strings.Join(parts, ",")
	}
	full := Options{Portfolio: 4, ShareClauses: true, Cube: 8}
	if got := names(full.ladder()); got != "configured,no-cube,serial,no-preprocess" {
		t.Errorf("full ladder = %s", got)
	}
	if got := names(Options{}.ladder()); got != "configured,no-preprocess" {
		t.Errorf("serial ladder = %s", got)
	}
	custom := Options{Ladder: []Rung{{Name: "only"}}}
	if got := names(custom.ladder()); got != "only" {
		t.Errorf("custom ladder = %s", got)
	}
	last := full.ladder()[3]
	if !last.NoPreprocess || last.Portfolio != 0 || last.Cube != 0 {
		t.Errorf("last rung = %+v, want serial no-preprocess", last)
	}
}

// TestDeadlineUnknownWithReport: a deadline far below what snark/Da
// needs must yield VerdictUnknown with a populated BudgetReport — not
// an error, and not a hang.
func TestDeadlineUnknownWithReport(t *testing.T) {
	res, err := Check("snark", "Da", Options{
		Model:    memmodel.Relaxed,
		Deadline: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("deadline exhaustion must be a verdict, got error: %v", err)
	}
	if res.Verdict != VerdictUnknown || res.Pass {
		t.Fatalf("verdict = %v (pass=%v), want unknown", res.Verdict, res.Pass)
	}
	if res.Budget == nil || len(res.Budget.Rungs) == 0 {
		t.Fatalf("budget report = %+v, want populated rungs", res.Budget)
	}
	if res.Budget.Deadline != 50*time.Millisecond {
		t.Errorf("report deadline = %v", res.Budget.Deadline)
	}
	for _, r := range res.Budget.Rungs {
		if r.Budget != sat.BudgetDeadline.String() {
			t.Errorf("rung %q exhausted %q (%s), want deadline", r.Name, r.Budget, r.Err)
		}
	}
}

// TestConflictBudgetUnknown: a one-conflict budget starves every rung
// of a non-trivial check; each rung's report names the conflicts axis.
func TestConflictBudgetUnknown(t *testing.T) {
	res, err := Check("harris", "Saa", Options{
		Model:          memmodel.SequentialConsistency,
		ConflictBudget: 1,
	})
	if err != nil {
		t.Fatalf("budget exhaustion must be a verdict, got error: %v", err)
	}
	if res.Verdict != VerdictUnknown {
		t.Fatalf("verdict = %v, want unknown", res.Verdict)
	}
	if res.Budget == nil || len(res.Budget.Rungs) != 2 {
		t.Fatalf("budget report = %+v, want the two default serial rungs", res.Budget)
	}
	for _, r := range res.Budget.Rungs {
		if r.Budget != sat.BudgetConflicts.String() {
			t.Errorf("rung %q exhausted %q (%s), want conflicts", r.Name, r.Budget, r.Err)
		}
	}
}

// TestLadderDegradedVerdict: a one-shot injected budget fault fails
// one rung; the retry runs clean and the final verdict is identical to
// a fault-free run, with the degradation recorded in the report.
func TestLadderDegradedVerdict(t *testing.T) {
	opts := Options{Model: memmodel.SequentialConsistency}
	clean, err := Check("harris", "Saa", opts)
	if err != nil {
		t.Fatal(err)
	}
	script := faultinject.NewScript(1, 1, faultinject.SolverBudget)
	opts.Faults = script
	res, err := Check("harris", "Saa", opts)
	if err != nil {
		t.Fatalf("recoverable fault must not error: %v", err)
	}
	if script.Fired(faultinject.SolverBudget) != 1 {
		t.Fatalf("injected budget fault never fired (instance too small?)")
	}
	if res.Verdict != clean.Verdict || res.Pass != clean.Pass {
		t.Errorf("degraded verdict %v/%v differs from clean %v/%v",
			res.Verdict, res.Pass, clean.Verdict, clean.Pass)
	}
	if res.Budget == nil || len(res.Budget.Rungs) == 0 {
		t.Fatalf("degraded run has no budget report")
	}
	if got := res.Budget.Rungs[0].Budget; got != sat.BudgetInjected.String() {
		t.Errorf("rung exhausted %q, want injected", got)
	}
	if !res.Spec.Equal(clean.Spec) {
		t.Errorf("degraded run mined a different observation set")
	}
}

// TestDeadlineSuiteContinues: one job exhausting its deadline must not
// take the rest of the suite with it — the starved job reports
// VerdictUnknown and the remaining jobs complete normally.
func TestDeadlineSuiteContinues(t *testing.T) {
	jobs := []Job{
		{Impl: "snark", Test: "Da", Opts: Options{Model: memmodel.Relaxed, Deadline: 50 * time.Millisecond}},
		{Impl: "ms2", Test: "T0", Opts: Options{Model: memmodel.SequentialConsistency}},
	}
	results := RunSuite(jobs, SuiteOptions{Parallelism: 2})
	if results[0].Err != nil {
		t.Fatalf("starved job errored: %v", results[0].Err)
	}
	if v := results[0].Res.Verdict; v != VerdictUnknown {
		t.Fatalf("starved job verdict = %v, want unknown", v)
	}
	if results[0].Res.Budget == nil {
		t.Error("starved job has no budget report")
	}
	if results[1].Err != nil {
		t.Fatalf("unbudgeted job errored: %v", results[1].Err)
	}
	if v := results[1].Res.Verdict; v == VerdictUnknown {
		t.Errorf("unbudgeted job verdict = %v", v)
	}
}

// TestSuitePanicIsolation: a check whose pipeline panics (injected at
// the encoder) becomes that job's error — typed, with the recovered
// value and stack — while the other jobs run to completion.
func TestSuitePanicIsolation(t *testing.T) {
	jobs := []Job{
		{Impl: "ms2", Test: "T0", Opts: Options{
			Model:  memmodel.SequentialConsistency,
			Faults: &faultinject.Always{Sites: []faultinject.Site{faultinject.EncodePanic}},
		}},
		{Impl: "ms2", Test: "T0", Opts: Options{Model: memmodel.SequentialConsistency}},
	}
	results := RunSuite(jobs, SuiteOptions{Parallelism: 2})
	if results[0].Err == nil {
		t.Fatalf("panicking job reported no error (res=%+v)", results[0].Res)
	}
	var rp *faultinject.RecoveredPanic
	if !errors.As(results[0].Err, &rp) {
		t.Fatalf("err = %v, want a *faultinject.RecoveredPanic", results[0].Err)
	}
	if faultinject.InjectedSite(rp) != faultinject.EncodePanic {
		t.Errorf("recovered %v, want the injected encoder panic", rp.Value)
	}
	if len(rp.Stack) == 0 {
		t.Error("recovered panic carries no stack")
	}
	if results[1].Err != nil || results[1].Res == nil {
		t.Fatalf("sibling job did not complete: %v", results[1].Err)
	}
}

// mustMine is a MineFunc returning a fixed set.
func mustMine(set *spec.Set) MineFunc {
	return func(*spec.Set, int) (*spec.Set, int, error) { return set, 1, nil }
}

func smallSet() *spec.Set {
	s := spec.NewSet()
	s.Add(spec.Observation{lsl.Int(1), lsl.Undef()})
	s.Add(spec.Observation{lsl.Int(2), lsl.Int(3)})
	return s
}

// TestSpecCacheQuarantine: truncated and bit-flipped disk entries are
// treated as misses, quarantined to <name>.bad, and counted — never
// parsed into a wrong specification.
func TestSpecCacheQuarantine(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bitflip", func(b []byte) []byte { b[len(b)-3] |= 0x80; return b }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			want := smallSet()
			if _, _, _, err := NewSpecCache(dir).GetOrMine("k1", mustMine(want)); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, "k1.obs")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(data), 0o644); err != nil {
				t.Fatal(err)
			}

			cache := NewSpecCache(dir) // fresh in-memory state, same disk
			mined := 0
			set, _, out, err := cache.GetOrMine("k1", func(*spec.Set, int) (*spec.Set, int, error) {
				mined++
				return want, 1, nil
			})
			if err != nil || mined != 1 {
				t.Fatalf("corrupt entry not re-mined: mined=%d err=%v", mined, err)
			}
			if !out.Corrupt || out.Hit {
				t.Errorf("outcome = %+v, want corrupt miss", out)
			}
			if cache.CorruptCount() != 1 {
				t.Errorf("CorruptCount = %d", cache.CorruptCount())
			}
			if !set.Equal(want) {
				t.Errorf("re-mined set differs")
			}
			if _, err := os.Stat(path + ".bad"); err != nil {
				t.Errorf("corrupt file not quarantined: %v", err)
			}
			// The re-mined set replaces the damaged file.
			if reread, ok := cache.loadDisk("k1", &CacheOutcome{}); !ok || !reread.Equal(want) {
				t.Errorf("rewritten entry unreadable")
			}
		})
	}
}

// TestSpecCacheCheckpointResume: a failed mine that produced a partial
// set leaves a <key>.part checkpoint; the next mine of the key is
// seeded with it and the checkpoint is cleared on success.
func TestSpecCacheCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	partial := smallSet()
	boom := errors.New("interrupted")

	cache := NewSpecCache(dir)
	set, iters, _, err := cache.GetOrMine("k", func(*spec.Set, int) (*spec.Set, int, error) {
		return partial, 3, boom
	})
	if !errors.Is(err, boom) || set != partial || iters != 3 {
		t.Fatalf("failed mine = (%v, %d, %v)", set, iters, err)
	}
	partPath := filepath.Join(dir, "k.part")
	if _, err := os.Stat(partPath); err != nil {
		t.Fatalf("no checkpoint after failed mine: %v", err)
	}

	full := spec.NewSet()
	full.Add(spec.Observation{lsl.Int(1), lsl.Undef()})
	full.Add(spec.Observation{lsl.Int(2), lsl.Int(3)})
	full.Add(spec.Observation{lsl.Int(9), lsl.Int(9)})
	resumedWith := -1
	got, _, out, err := NewSpecCache(dir).GetOrMine("k", func(resume *spec.Set, resumeIters int) (*spec.Set, int, error) {
		resumedWith = resumeIters
		if resume == nil || !resume.Equal(partial) {
			t.Errorf("resume set = %v, want the checkpointed partial", resume)
		}
		return full, resumeIters + 2, nil
	})
	if err != nil || !got.Equal(full) {
		t.Fatalf("resumed mine = (%v, %v)", got, err)
	}
	if !out.Resumed || resumedWith != 3 {
		t.Errorf("outcome = %+v, resume iterations = %d, want resumed from 3", out, resumedWith)
	}
	if _, err := os.Stat(partPath); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("checkpoint not cleared on success: %v", err)
	}
}

// TestSpecCacheMinerPanicReleasesWaiters: a panicking miner must
// release the single-flight entry (no deadlocked waiters) before the
// panic unwinds to the suite's recovery layer.
func TestSpecCacheMinerPanicReleasesWaiters(t *testing.T) {
	cache := NewSpecCache("")
	func() {
		defer func() { recover() }()
		cache.GetOrMine("k", func(*spec.Set, int) (*spec.Set, int, error) {
			panic(faultinject.Injected{Site: faultinject.MinePanic})
		})
		t.Fatal("miner panic swallowed")
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		set, _, _, err := cache.GetOrMine("k", mustMine(smallSet()))
		if err != nil || set == nil {
			t.Errorf("post-panic mine = (%v, %v)", set, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("single-flight entry leaked by panicking miner: waiter deadlocked")
	}
}

// TestChaosSweep drives the whole suite engine through every fault
// site with deterministic seeds: every job must end in a clean verdict
// or a typed error — no unrecovered panic, no deadlock — and one-shot
// faults at recoverable sites must reproduce the fault-free verdicts
// exactly.
func TestChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is slow")
	}
	jobs := []Job{
		{Impl: "ms2", Test: "T0", Opts: Options{Model: memmodel.SequentialConsistency}},
		{Impl: "ms2", Test: "T0", Opts: Options{Model: memmodel.Relaxed}},
	}
	baseline := RunSuite(jobs, SuiteOptions{Parallelism: 2})
	requireAllRan(t, baseline)

	for _, site := range faultinject.Sites() {
		for _, seed := range []int64{1, 7} {
			t.Run(string(site)+"/"+string('0'+rune(seed)), func(t *testing.T) {
				dir := t.TempDir()
				// Prime the disk mirror so CacheCorrupt has entries to
				// damage on the chaos pass.
				prime := RunSuite(jobs, SuiteOptions{Parallelism: 2, SpecCacheDir: dir})
				requireAllRan(t, prime)

				script := faultinject.NewScript(seed, 1, site)
				results := RunSuite(jobs, SuiteOptions{
					Parallelism:  2,
					SpecCacheDir: dir,
					Faults:       script,
				})
				for i, r := range results {
					if r.Err != nil {
						var rp *faultinject.RecoveredPanic
						typed := errors.As(r.Err, &rp) ||
							errors.Is(r.Err, sat.ErrBudgetExhausted) ||
							errors.Is(r.Err, spec.ErrSolverUnknown)
						if !typed {
							t.Errorf("job %d: untyped error %v", i, r.Err)
						}
						if faultinject.Recoverable(site) {
							t.Errorf("job %d: recoverable site %s errored: %v", i, site, r.Err)
						}
						continue
					}
					if r.Res == nil {
						t.Errorf("job %d: no result and no error", i)
						continue
					}
					if v := r.Res.Verdict; v != VerdictPass && v != VerdictFail && v != VerdictUnknown {
						t.Errorf("job %d: invalid verdict %v", i, v)
					}
					if faultinject.Recoverable(site) {
						if r.Res.Verdict != baseline[i].Res.Verdict {
							t.Errorf("job %d: verdict %v under recoverable fault, clean run had %v",
								i, r.Res.Verdict, baseline[i].Res.Verdict)
						}
						if !r.Res.Spec.Equal(baseline[i].Res.Spec) {
							t.Errorf("job %d: observation set drifted under recoverable fault", i)
						}
					}
				}
			})
		}
	}
}

package core

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"checkfence/internal/spec"
)

func dirNames(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// TestSpecCacheSweepsStaleTemps: temp files orphaned by a crashed
// writer are removed when the cache opens; live entries are kept.
func TestSpecCacheSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	stale := []string{"abc123.obs-tmp4567", "def456.part-tmp1", "feed.tmp9"}
	for _, name := range stale {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "feedface.obs"), []byte("entry"), 0o644); err != nil {
		t.Fatal(err)
	}

	NewSpecCache(dir)

	names := dirNames(t, dir)
	if len(names) != 1 || names[0] != "feedface.obs" {
		t.Errorf("after sweep: %v, want only feedface.obs", names)
	}
}

// TestWriteAtomicCleansUpOnError: a failing write leaves neither the
// destination nor a temp file behind.
func TestWriteAtomicCleansUpOnError(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("boom")
	err := writeAtomic(dir, "key.obs", func(w io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("writeAtomic error = %v, want boom", err)
	}
	if names := dirNames(t, dir); len(names) != 0 {
		t.Errorf("error path left files behind: %v", names)
	}
}

// TestWriteAtomicPublishes: a successful write is visible under the
// final name with no temp residue.
func TestWriteAtomicPublishes(t *testing.T) {
	dir := t.TempDir()
	if err := writeAtomic(dir, "key.obs", func(w io.Writer) error {
		_, err := io.WriteString(w, "payload")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	names := dirNames(t, dir)
	if len(names) != 1 || names[0] != "key.obs" {
		t.Fatalf("after write: %v, want only key.obs", names)
	}
	data, err := os.ReadFile(filepath.Join(dir, "key.obs"))
	if err != nil || string(data) != "payload" {
		t.Errorf("content = %q, %v", data, err)
	}
}

// TestSpecCacheStats: the cumulative counters reflect cache traffic
// across calls (the view /metrics exposes).
func TestSpecCacheStats(t *testing.T) {
	c := NewSpecCache("")
	mine := func(resume *spec.Set, iters int) (*spec.Set, int, error) {
		s := spec.NewSet()
		return s, 1, nil
	}
	if _, _, _, err := c.GetOrMine("k1", mine); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.GetOrMine("k1", mine); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss then 1 hit", st)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
}

// countingGate wraps a Gate and records the maximum concurrency it
// ever admitted.
type countingGate struct {
	inner Gate
	mu    sync.Mutex
	cur   int
	max   int
}

func (g *countingGate) Acquire(ctx context.Context) error {
	if err := g.inner.Acquire(ctx); err != nil {
		return err
	}
	g.mu.Lock()
	g.cur++
	if g.cur > g.max {
		g.max = g.cur
	}
	g.mu.Unlock()
	return nil
}

func (g *countingGate) Release() {
	g.mu.Lock()
	g.cur--
	g.mu.Unlock()
	g.inner.Release()
}

// TestGateBoundsAcrossSuites: two concurrent RunSuite calls sharing
// one single-slot Gate never run two units at once — the admission
// control the checkfenced daemon relies on to bound concurrent batches.
func TestGateBoundsAcrossSuites(t *testing.T) {
	gate := &countingGate{inner: NewGate(1)}
	jobs := fourModelJobs("ms2", "T0", Options{Sweep: SweepOff})
	var wg sync.WaitGroup
	resCh := make(chan []SuiteResult, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resCh <- RunSuite(jobs, SuiteOptions{Parallelism: 4, Gate: gate})
		}()
	}
	wg.Wait()
	close(resCh)
	for results := range resCh {
		requireAllRan(t, results)
		for i, r := range results {
			if !r.Res.Pass {
				t.Errorf("job %d failed under gating", i)
			}
		}
	}
	if gate.max != 1 {
		t.Errorf("max concurrent units = %d, want 1", gate.max)
	}
}

// TestGateCancelledAcquire: a cancelled context surfaces as the
// jobs' error instead of hanging on the gate.
func TestGateCancelledAcquire(t *testing.T) {
	gate := NewGate(1)
	ctx, cancel := context.WithCancel(context.Background())
	// Occupy the only slot so the suite's acquire must block.
	if err := gate.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	defer gate.Release()
	cancel()
	results := RunSuite([]Job{{Impl: "ms2", Test: "T0"}},
		SuiteOptions{Parallelism: 1, Gate: gate, Context: ctx})
	if len(results) != 1 || !errors.Is(results[0].Err, context.Canceled) {
		t.Errorf("results = %+v, want context.Canceled", results)
	}
}

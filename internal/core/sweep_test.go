package core

import (
	"testing"
	"time"

	"checkfence/internal/memmodel"
)

func fourModelJobs(impl, test string, opts Options) []Job {
	models := []memmodel.Model{
		memmodel.SequentialConsistency, memmodel.TSO,
		memmodel.PSO, memmodel.Relaxed,
	}
	jobs := make([]Job, len(models))
	for i, m := range models {
		o := opts
		o.Model = m
		jobs[i] = Job{Impl: impl, Test: test, Opts: o}
	}
	return jobs
}

// TestSweepEarlyExit: when a stronger model's counterexample replays
// under a weaker model's axioms, the weaker model must be decided
// without a solve and report it. ms2-nofence/T0 fails with an
// out-of-spec observation under both PSO and Relaxed, so the sweep
// decides Relaxed by replaying PSO's trace.
func TestSweepEarlyExit(t *testing.T) {
	results := RunSuite(fourModelJobs("ms2-nofence", "T0", Options{}),
		SuiteOptions{Parallelism: 1})
	requireAllRan(t, results)
	var early int
	for i, r := range results {
		early += r.Res.Stats.SweepEarlyExit
		wantPass := i < 2 // SC and TSO hold, PSO and Relaxed fail
		if r.Res.Pass != wantPass {
			t.Errorf("%v: pass=%v, want %v", r.Job.Opts.Model, r.Res.Pass, wantPass)
		}
		if !r.Res.Pass && r.Res.Cex == nil {
			t.Errorf("%v: failure without a counterexample", r.Job.Opts.Model)
		}
	}
	if early == 0 {
		t.Error("no member was decided by counterexample replay")
	}
	relaxed := results[3].Res
	if relaxed.Stats.SweepEarlyExit != 1 {
		t.Errorf("relaxed: SweepEarlyExit=%d, want 1", relaxed.Stats.SweepEarlyExit)
	}
	if relaxed.Cex == nil || relaxed.Cex.Model != memmodel.Relaxed {
		t.Errorf("replayed counterexample not relabeled: %+v", relaxed.Cex)
	}
}

// TestSweepFallbackIndependent: jobs that cannot sweep — a forced rf
// backend, a Serial member, an explicit opt-out — run independently
// and still produce correct results.
func TestSweepFallbackIndependent(t *testing.T) {
	jobs := fourModelJobs("ms2", "T0", Options{Sweep: SweepOff})
	jobs = append(jobs, Job{Impl: "ms2", Test: "T0", Opts: Options{Model: memmodel.Serial}})
	results := RunSuite(jobs, SuiteOptions{Parallelism: 2})
	requireAllRan(t, results)
	for i, r := range results {
		if !r.Res.Pass {
			t.Errorf("job %d must pass", i)
		}
		if r.Res.Stats.SweepGroups != 0 {
			t.Errorf("job %d joined a group despite opting out", i)
		}
	}
}

// TestSweepDeadlineFallback: a group whose shared attempt exhausts its
// budget falls back to independent checks carved from the remaining
// window, so a tight group budget degrades, never wedges.
func TestSweepDeadlineFallback(t *testing.T) {
	jobs := fourModelJobs("msn", "T0", Options{Deadline: time.Nanosecond})
	results := RunSuite(jobs, SuiteOptions{Parallelism: 1})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Res == nil {
			t.Fatalf("job %d: nil result", i)
		}
		// Each member must resolve to a verdict (pass or unknown after
		// the ladder) — never an error.
		if r.Res.Verdict == VerdictFail {
			t.Errorf("job %d: spurious failure under a starved budget", i)
		}
	}
}

// TestSweepFallbackDeadlineBudget: fallback members share the group's
// remaining deadline instead of opening fresh windows. snark/Da takes
// seconds, so a 400ms group deadline forces the shared attempt to
// exhaust and every member to fall back; before the carve each member
// re-ran under its own full 400ms window and the unit's wall clock
// inflated to ~(1 + members) x the configured deadline.
func TestSweepFallbackDeadlineBudget(t *testing.T) {
	const deadline = 400 * time.Millisecond
	start := time.Now()
	results := RunSuite(fourModelJobs("snark", "Da", Options{Deadline: deadline}),
		SuiteOptions{Parallelism: 1})
	elapsed := time.Since(start)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Res.Verdict != VerdictUnknown {
			// The problem needs seconds; under 400ms every member must
			// budget out (a definitive verdict would mean the deadline
			// was not enforced — or hardware got very fast).
			t.Logf("job %d: verdict %v inside the deadline", i, r.Res.Verdict)
		}
	}
	// Generous ceiling: the group attempt may use the full window and
	// members add bounded overhead, but nothing re-opens a full
	// window. The pre-fix behavior lands at ~5x the deadline.
	if elapsed > 3*deadline {
		t.Errorf("sweep unit took %v under a %v deadline; fallback deadlines not carved from the group budget", elapsed, deadline)
	}
}

// TestSweepFingerprintSeparates: jobs with differing non-model options
// must not share a group.
func TestSweepFingerprintSeparates(t *testing.T) {
	jobs := []Job{
		{Impl: "ms2", Test: "T0", Opts: Options{Model: memmodel.SequentialConsistency}},
		{Impl: "ms2", Test: "T0", Opts: Options{Model: memmodel.Relaxed}},
		{Impl: "ms2", Test: "T0", Opts: Options{Model: memmodel.TSO, Cube: 2}},
	}
	eff := make([]Options, len(jobs))
	for i := range jobs {
		eff[i] = jobs[i].Opts
	}
	units := planUnits(jobs, eff, true)
	var groups, singles int
	for _, u := range units {
		if u.group != nil {
			groups++
			if len(u.group.models) != 2 {
				t.Errorf("group has %d models, want 2", len(u.group.models))
			}
		} else {
			singles++
		}
	}
	if groups != 1 || singles != 1 {
		t.Errorf("units: %d groups, %d singles; want 1 and 1", groups, singles)
	}
}

// TestSweepDuplicateModels: two jobs with the identical model share
// the group's single check and both receive results.
func TestSweepDuplicateModels(t *testing.T) {
	jobs := fourModelJobs("ms2", "T0", Options{})
	jobs = append(jobs, jobs[0]) // duplicate the SC job
	results := RunSuite(jobs, SuiteOptions{Parallelism: 1})
	requireAllRan(t, results)
	a, b := results[0].Res, results[len(results)-1].Res
	if a == b {
		t.Error("duplicate jobs share one *Result; want distinct copies")
	}
	if a.Pass != b.Pass || !a.Spec.Equal(b.Spec) {
		t.Error("duplicate jobs diverge")
	}
}

package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"checkfence/internal/harness"
	"checkfence/internal/spec"
)

// SpecCache memoizes mined observation sets across checks. The paper
// (§3.2) notes the specification is model-independent: S(T,I) is
// defined by serial executions only, so a suite that checks the same
// (implementation, test) pair under sc, tso, pso, and relaxed needs
// to mine once, not four times. The cache is concurrency-safe and
// single-flight: when several suite workers need the same set, one
// mines and the rest wait for it.
//
// Keys cover everything mining depends on: the implementation source,
// the test structure, the loop unrolling bounds, and the spec source
// (SAT mining vs. reference enumeration). An optional directory
// mirrors the sets on disk (spec.Set serialization), so they survive
// the process and are reused across runs.
type SpecCache struct {
	mu      sync.Mutex
	entries map[string]*specEntry
	dir     string
}

type specEntry struct {
	done       chan struct{}
	set        *spec.Set
	iterations int
	ok         bool
}

// NewSpecCache returns an empty cache. dir, when non-empty, enables
// the on-disk mirror (the directory is created on first store).
func NewSpecCache(dir string) *SpecCache {
	return &SpecCache{entries: map[string]*specEntry{}, dir: dir}
}

// GetOrMine returns the set for key, mining it with mine on a miss.
// Concurrent callers with the same key block until the first
// completes. Mining errors are never cached: the failing caller gets
// its own error (it may need live solver state to build a trace, as
// the sequential-bug path does), waiters re-mine for themselves, and
// the key becomes free again.
func (c *SpecCache) GetOrMine(key string, mine func() (*spec.Set, int, error)) (set *spec.Set, iterations int, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.done
		if e.ok {
			return e.set, e.iterations, true, nil
		}
		// The miner failed; every caller needs its own failure
		// context, so mine uncached.
		set, iterations, err = mine()
		return set, iterations, false, err
	}
	e := &specEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	if diskSet, ok := c.loadDisk(key); ok {
		e.set, e.ok = diskSet, true
		close(e.done)
		return diskSet, 0, true, nil
	}

	set, iterations, err = mine()
	if err != nil {
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
		close(e.done)
		return nil, iterations, false, err
	}
	e.set, e.iterations, e.ok = set, iterations, true
	close(e.done)
	c.storeDisk(key, set)
	return set, iterations, false, nil
}

// Len returns the number of cached sets (for tests and stats).
func (c *SpecCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *SpecCache) diskPath(key string) string {
	return filepath.Join(c.dir, key+".obs")
}

func (c *SpecCache) loadDisk(key string) (*spec.Set, bool) {
	if c.dir == "" {
		return nil, false
	}
	f, err := os.Open(c.diskPath(key))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	set, err := spec.ReadSetKeyed(f, key)
	if err != nil {
		// A corrupt, legacy, or foreign-key file is treated as a miss;
		// mining overwrites it.
		return nil, false
	}
	return set, true
}

func (c *SpecCache) storeDisk(key string, set *spec.Set) {
	if c.dir == "" {
		return
	}
	// Disk mirroring is best-effort: a failure costs re-mining in a
	// later process, never correctness.
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return
	}
	_, werr := set.WriteKeyed(tmp, key)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.diskPath(key)); err != nil {
		os.Remove(tmp.Name())
	}
}

// specKey derives the cache key for one mining problem. It hashes the
// implementation source (not just the name: variants and custom data
// types share names at times), the full test structure, the unrolling
// bounds, and the spec source.
func specKey(impl *harness.Impl, test *harness.Test, bounds map[string]int, src SpecSource) string {
	h := sha256.New()
	io.WriteString(h, impl.Name)
	io.WriteString(h, "\x00")
	io.WriteString(h, impl.InitFunc)
	io.WriteString(h, "\x00")
	io.WriteString(h, impl.Obj)
	io.WriteString(h, "\x00")
	io.WriteString(h, impl.Source)
	io.WriteString(h, "\x00")
	fmt.Fprintf(h, "%v\x00%v\x00", impl.Ops, test.Init)
	fmt.Fprintf(h, "%v\x00", test.Threads)
	keys := make([]string, 0, len(bounds))
	for k := range bounds {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%d\x00", k, bounds[k])
	}
	fmt.Fprintf(h, "src=%d", src)
	return hex.EncodeToString(h.Sum(nil))
}

package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"checkfence/internal/faultinject"
	"checkfence/internal/harness"
	"checkfence/internal/spec"
)

// SpecCache memoizes mined observation sets across checks. The paper
// (§3.2) notes the specification is model-independent: S(T,I) is
// defined by serial executions only, so a suite that checks the same
// (implementation, test) pair under sc, tso, pso, and relaxed needs
// to mine once, not four times. The cache is concurrency-safe and
// single-flight: when several suite workers need the same set, one
// mines and the rest wait for it.
//
// Keys cover everything mining depends on: the implementation source,
// the test structure, the loop unrolling bounds, and the spec source
// (SAT mining vs. reference enumeration). An optional directory
// mirrors the sets on disk (spec.Set serialization), so they survive
// the process and are reused across runs.
//
// The disk mirror is hardened against corruption: an entry that no
// longer parses (truncated write, bit rot, foreign key) is quarantined
// to <name>.bad and treated as a miss, so one damaged file costs a
// re-mine, never a wrong specification or a crash. Interrupted mines
// leave a <key>.part checkpoint (partial set plus iteration count)
// that the next mine of the same key resumes from.
type SpecCache struct {
	mu      sync.Mutex
	entries map[string]*specEntry
	dir     string
	faults  faultinject.Faults
	corrupt int
	hits    int
	misses  int
	resumed int
}

type specEntry struct {
	done       chan struct{}
	set        *spec.Set
	iterations int
	ok         bool
}

// MineFunc mines an observation set, optionally seeded with a
// checkpointed partial set and the cumulative iteration count that
// produced it (nil and 0 for a fresh mine).
type MineFunc func(resume *spec.Set, resumeIterations int) (*spec.Set, int, error)

// CacheOutcome describes how a GetOrMine request was served.
type CacheOutcome struct {
	// Hit: the set came from the cache (memory or disk), not mine.
	Hit bool
	// Resumed: mining was seeded from an on-disk checkpoint left by an
	// earlier interrupted mine.
	Resumed bool
	// Corrupt: a corrupt disk entry or checkpoint was quarantined
	// while serving this request.
	Corrupt bool
}

// NewSpecCache returns an empty cache. dir, when non-empty, enables
// the on-disk mirror (the directory is created on first store).
// Opening a cache sweeps temp files orphaned by a crashed or killed
// writer, so a long-lived daemon's cache directory does not accumulate
// them.
func NewSpecCache(dir string) *SpecCache {
	c := &SpecCache{entries: map[string]*specEntry{}, dir: dir}
	c.sweepStaleTemps()
	return c
}

// sweepStaleTemps removes leftover atomic-write temp files from the
// cache directory. Keys are hex digests and live entries use only the
// .obs/.part/.bad suffixes, so a "-tmp" or ".tmp" substring can only
// come from an interrupted writer. A concurrently writing sibling
// process may lose its in-flight temp file to the sweep; its rename
// then fails and the store is retried by a later mine — stores are
// best-effort by contract.
func (c *SpecCache) sweepStaleTemps() {
	if c.dir == "" {
		return
	}
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if strings.Contains(name, "-tmp") || strings.Contains(name, ".tmp") {
			os.Remove(filepath.Join(c.dir, name))
		}
	}
}

// SetFaults arms fault injection on the cache's disk reads (the
// CacheCorrupt site flips a byte of a loaded entry before parsing).
func (c *SpecCache) SetFaults(f faultinject.Faults) {
	c.mu.Lock()
	c.faults = f
	c.mu.Unlock()
}

func (c *SpecCache) getFaults() faultinject.Faults {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.faults
}

// CorruptCount returns how many corrupt disk files the cache has
// quarantined over its lifetime.
func (c *SpecCache) CorruptCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.corrupt
}

// CacheStats is a snapshot of a cache's cumulative traffic, across
// every check and suite that shared it. The per-check Stats fields
// report the same events scoped to one check; these totals back
// long-lived consumers such as the checkfenced /metrics endpoint.
type CacheStats struct {
	// Hits and Misses count GetOrMine requests served from the cache
	// (memory or disk) vs. mined fresh.
	Hits   int
	Misses int
	// Resumed counts mines seeded from an on-disk checkpoint left by
	// an earlier interrupted mine.
	Resumed int
	// Corrupt counts quarantined corrupt disk files.
	Corrupt int
	// Entries is the current number of in-memory entries.
	Entries int
}

// Stats returns the cache's cumulative traffic counters.
func (c *SpecCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:    c.hits,
		Misses:  c.misses,
		Resumed: c.resumed,
		Corrupt: c.corrupt,
		Entries: len(c.entries),
	}
}

// GetOrMine returns the set for key, mining it with mine on a miss.
// Concurrent callers with the same key block until the first
// completes. Mining errors are never cached: the failing caller gets
// its own error (it may need live solver state to build a trace, as
// the sequential-bug path does) together with whatever partial set was
// mined, waiters re-mine for themselves, and the key becomes free
// again. A failed mine that produced a partial set leaves a disk
// checkpoint; the next mine of the key resumes from it.
func (c *SpecCache) GetOrMine(key string, mine MineFunc) (set *spec.Set, iterations int, out CacheOutcome, err error) {
	set, iterations, out, err = c.getOrMine(key, mine)
	c.mu.Lock()
	if out.Hit {
		c.hits++
	} else {
		c.misses++
	}
	if out.Resumed {
		c.resumed++
	}
	c.mu.Unlock()
	return set, iterations, out, err
}

func (c *SpecCache) getOrMine(key string, mine MineFunc) (set *spec.Set, iterations int, out CacheOutcome, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.done
		if e.ok {
			return e.set, e.iterations, CacheOutcome{Hit: true}, nil
		}
		// The miner failed; every caller needs its own failure
		// context, so mine uncached.
		set, iterations, err = c.mineResumable(key, mine, &out)
		return set, iterations, out, err
	}
	e := &specEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	if diskSet, ok := c.loadDisk(key, &out); ok {
		e.set, e.ok = diskSet, true
		close(e.done)
		out.Hit = true
		return diskSet, 0, out, nil
	}

	set, iterations, err = func() (*spec.Set, int, error) {
		// A miner that panics (injected fault, genuine crash) must
		// release the single-flight entry before unwinding, or every
		// waiter on the key would block forever on done.
		defer func() {
			if p := recover(); p != nil {
				c.mu.Lock()
				delete(c.entries, key)
				c.mu.Unlock()
				close(e.done)
				panic(p)
			}
		}()
		return c.mineResumable(key, mine, &out)
	}()
	if err != nil {
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
		close(e.done)
		return set, iterations, out, err
	}
	e.set, e.iterations, e.ok = set, iterations, true
	close(e.done)
	c.storeDisk(key, set)
	return set, iterations, out, nil
}

// mineResumable runs mine seeded from any on-disk checkpoint for key,
// checkpointing the partial set on failure and clearing the
// checkpoint on success.
func (c *SpecCache) mineResumable(key string, mine MineFunc, out *CacheOutcome) (*spec.Set, int, error) {
	resume, resumeIters, ok := c.loadCheckpoint(key, out)
	if ok {
		out.Resumed = true
	}
	set, iterations, err := mine(resume, resumeIters)
	if err != nil {
		if set != nil && set.Len() > 0 {
			c.StoreCheckpoint(key, set, iterations)
		}
		return set, iterations, err
	}
	c.removeCheckpoint(key)
	return set, iterations, nil
}

// Len returns the number of cached sets (for tests and stats).
func (c *SpecCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *SpecCache) diskPath(key string) string {
	return filepath.Join(c.dir, key+".obs")
}

func (c *SpecCache) partPath(key string) string {
	return filepath.Join(c.dir, key+".part")
}

// quarantine moves an unparseable cache file aside as <name>.bad so it
// stops shadowing future stores but remains available for inspection,
// and counts it.
func (c *SpecCache) quarantine(path string) {
	if err := os.Rename(path, path+".bad"); err != nil {
		// Renaming failed (e.g. read-only directory); remove so the
		// corrupt bytes at least stop being re-read. Best-effort.
		os.Remove(path)
	}
	c.mu.Lock()
	c.corrupt++
	c.mu.Unlock()
}

func (c *SpecCache) loadDisk(key string, out *CacheOutcome) (*spec.Set, bool) {
	if c.dir == "" {
		return nil, false
	}
	path := c.diskPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	if f := c.getFaults(); f != nil && f.Fire(faultinject.CacheCorrupt) && len(data) > 0 {
		data[len(data)/2] ^= 0x40
	}
	set, err := spec.ReadSetKeyed(bytes.NewReader(data), key)
	if err != nil {
		// A truncated, bit-flipped, legacy, or foreign-key file must
		// never supply a specification; quarantine it and re-mine.
		c.quarantine(path)
		out.Corrupt = true
		return nil, false
	}
	return set, true
}

func (c *SpecCache) loadCheckpoint(key string, out *CacheOutcome) (*spec.Set, int, bool) {
	if c.dir == "" {
		return nil, 0, false
	}
	path := c.partPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false
	}
	set, iters, err := spec.ReadCheckpoint(bytes.NewReader(data), key)
	if err != nil {
		c.quarantine(path)
		out.Corrupt = true
		return nil, 0, false
	}
	return set, iters, true
}

// writeAtomic durably writes the bytes produced by write to dir/name:
// a unique temp file is filled, fsynced, and renamed over the target,
// and the directory is fsynced after the rename. A crash at any point
// leaves either the old entry or the new one — never a torn file, and
// never a rename the filesystem could lose on power failure. The temp
// file is removed on every error path so failed stores do not
// accumulate in a long-lived cache directory.
func writeAtomic(dir, name string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(dir, name+"-tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if err := write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		os.Remove(tmpName)
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// StoreCheckpoint mirrors a partial observation set and its iteration
// count to disk so an interrupted mine of the same key can resume.
// Best-effort, like storeDisk; safe for concurrent use (fsynced
// tmp+rename).
func (c *SpecCache) StoreCheckpoint(key string, partial *spec.Set, iterations int) {
	if c.dir == "" || partial == nil {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	writeAtomic(c.dir, key+".part", func(w io.Writer) error {
		_, err := partial.WriteCheckpoint(w, key, iterations)
		return err
	})
}

func (c *SpecCache) removeCheckpoint(key string) {
	if c.dir == "" {
		return
	}
	os.Remove(c.partPath(key))
}

func (c *SpecCache) storeDisk(key string, set *spec.Set) {
	if c.dir == "" {
		return
	}
	// Disk mirroring is best-effort: a failure costs re-mining in a
	// later process, never correctness.
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	writeAtomic(c.dir, key+".obs", func(w io.Writer) error {
		_, err := set.WriteKeyed(w, key)
		return err
	})
}

// specKey derives the cache key for one mining problem. It hashes the
// implementation source (not just the name: variants and custom data
// types share names at times), the full test structure, the unrolling
// bounds, and the spec source.
func specKey(impl *harness.Impl, test *harness.Test, bounds map[string]int, src SpecSource) string {
	h := sha256.New()
	io.WriteString(h, impl.Name)
	io.WriteString(h, "\x00")
	io.WriteString(h, impl.InitFunc)
	io.WriteString(h, "\x00")
	io.WriteString(h, impl.Obj)
	io.WriteString(h, "\x00")
	io.WriteString(h, impl.Source)
	io.WriteString(h, "\x00")
	fmt.Fprintf(h, "%v\x00%v\x00", impl.Ops, test.Init)
	fmt.Fprintf(h, "%v\x00", test.Threads)
	keys := make([]string, 0, len(bounds))
	for k := range bounds {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%d\x00", k, bounds[k])
	}
	fmt.Fprintf(h, "src=%d", src)
	return hex.EncodeToString(h.Sum(nil))
}

package core

import (
	"testing"

	"checkfence/internal/memmodel"
)

func check(t *testing.T, impl, test string, opts Options) *Result {
	t.Helper()
	res, err := Check(impl, test, opts)
	if err != nil {
		t.Fatalf("Check(%s, %s): %v", impl, test, err)
	}
	return res
}

func TestMSNT0SCPasses(t *testing.T) {
	res := check(t, "msn", "T0", Options{Model: memmodel.SequentialConsistency})
	if !res.Pass {
		t.Fatalf("msn/T0 on SC must pass; cex:\n%v", res.Cex)
	}
	if res.Stats.ObsSetSize == 0 {
		t.Error("observation set must be non-empty")
	}
	t.Logf("obs set size=%d instrs=%d loads=%d stores=%d vars=%d clauses=%d",
		res.Stats.ObsSetSize, res.Stats.Instrs, res.Stats.Loads, res.Stats.Stores,
		res.Stats.CNFVars, res.Stats.CNFClauses)
}

func TestMSNT0RelaxedFencedPasses(t *testing.T) {
	res := check(t, "msn", "T0", Options{Model: memmodel.Relaxed})
	if !res.Pass {
		t.Fatalf("fenced msn/T0 on Relaxed must pass; cex:\n%v", res.Cex)
	}
}

func TestMSNT0RelaxedUnfencedFails(t *testing.T) {
	res := check(t, "msn-nofence", "T0", Options{Model: memmodel.Relaxed})
	if res.Pass {
		t.Fatal("unfenced msn/T0 on Relaxed must fail")
	}
	if res.Cex == nil {
		t.Fatal("failing check must produce a counterexample trace")
	}
	t.Logf("counterexample:\n%s", res.Cex)
}

func TestMSNRefsetMatchesSATSpec(t *testing.T) {
	satRes := check(t, "msn", "T0", Options{Model: memmodel.SequentialConsistency, SpecSource: SpecSAT})
	refRes := check(t, "msn", "T0", Options{Model: memmodel.SequentialConsistency, SpecSource: SpecRef})
	if !satRes.Spec.Equal(refRes.Spec) {
		t.Errorf("SAT-mined spec (%d obs) != refset spec (%d obs)\nSAT: %v\nref: %v",
			satRes.Spec.Len(), refRes.Spec.Len(), satRes.Spec.All(), refRes.Spec.All())
	}
}

package core

import (
	"testing"

	"checkfence/internal/memmodel"
)

func check(t *testing.T, impl, test string, opts Options) *Result {
	t.Helper()
	res, err := Check(impl, test, opts)
	if err != nil {
		t.Fatalf("Check(%s, %s): %v", impl, test, err)
	}
	return res
}

func TestMSNT0SCPasses(t *testing.T) {
	res := check(t, "msn", "T0", Options{Model: memmodel.SequentialConsistency})
	if !res.Pass {
		t.Fatalf("msn/T0 on SC must pass; cex:\n%v", res.Cex)
	}
	if res.Stats.ObsSetSize == 0 {
		t.Error("observation set must be non-empty")
	}
	t.Logf("obs set size=%d instrs=%d loads=%d stores=%d vars=%d clauses=%d",
		res.Stats.ObsSetSize, res.Stats.Instrs, res.Stats.Loads, res.Stats.Stores,
		res.Stats.CNFVars, res.Stats.CNFClauses)
}

func TestMSNT0RelaxedFencedPasses(t *testing.T) {
	res := check(t, "msn", "T0", Options{Model: memmodel.Relaxed})
	if !res.Pass {
		t.Fatalf("fenced msn/T0 on Relaxed must pass; cex:\n%v", res.Cex)
	}
}

func TestMSNT0RelaxedUnfencedFails(t *testing.T) {
	res := check(t, "msn-nofence", "T0", Options{Model: memmodel.Relaxed})
	if res.Pass {
		t.Fatal("unfenced msn/T0 on Relaxed must fail")
	}
	if res.Cex == nil {
		t.Fatal("failing check must produce a counterexample trace")
	}
	t.Logf("counterexample:\n%s", res.Cex)
}

// TestCexValidatesUnderAllConfigs: validation is on by default, so a
// returned counterexample has already survived the axiom re-check and
// the interpreter replay — under every solve configuration that could
// pick a different SAT model (portfolio winner, cube, simplification
// levels).
func TestCexValidatesUnderAllConfigs(t *testing.T) {
	configs := map[string]Options{
		"serial":    {Model: memmodel.Relaxed, ValidateTraces: ValidateOn},
		"portfolio": {Model: memmodel.Relaxed, Backend: BackendPortfolio, Portfolio: 3},
		"cube":      {Model: memmodel.Relaxed, Backend: BackendCube, Cube: 2},
		"tseitin":   {Model: memmodel.Relaxed, SimplifyLevel: -1, NoPreprocess: true},
	}
	for name, opts := range configs {
		res := check(t, "msn-nofence", "T0", opts)
		if res.Pass || res.Cex == nil {
			t.Errorf("%s: expected a validated counterexample", name)
		}
	}
	// Sequential-bug traces validate too (Serial-model axioms + replay
	// reproducing the runtime error).
	res := check(t, "lazylist-bug", "Sac", Options{Model: memmodel.SequentialConsistency})
	if res.Pass || !res.SeqBug || res.Cex == nil {
		t.Error("lazylist-bug must yield a validated sequential-bug trace")
	}
	// ValidateOff still returns the raw counterexample.
	res = check(t, "msn-nofence", "T0", Options{Model: memmodel.Relaxed, ValidateTraces: ValidateOff})
	if res.Pass || res.Cex == nil {
		t.Error("ValidateOff: expected a counterexample")
	}
}

func TestMSNRefsetMatchesSATSpec(t *testing.T) {
	satRes := check(t, "msn", "T0", Options{Model: memmodel.SequentialConsistency, SpecSource: SpecSAT})
	refRes := check(t, "msn", "T0", Options{Model: memmodel.SequentialConsistency, SpecSource: SpecRef})
	if !satRes.Spec.Equal(refRes.Spec) {
		t.Errorf("SAT-mined spec (%d obs) != refset spec (%d obs)\nSAT: %v\nref: %v",
			satRes.Spec.Len(), refRes.Spec.Len(), satRes.Spec.All(), refRes.Spec.All())
	}
}

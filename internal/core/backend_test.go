package core

import (
	"strings"
	"testing"

	"checkfence/internal/harness"
	"checkfence/internal/memmodel"
)

// litmusImpl is a four-operation datatype whose ops are single global
// accesses, so harness tests compose into classic litmus shapes. It is
// squarely inside the reads-from fragment: the router must send it to
// the rf engine under auto.
func litmusImpl() *harness.Impl {
	return &harness.Impl{
		Name: "litmusdt", Kind: "litmus", Source: `
int x;
int y;

void init_lit(int *s) { x = 0; y = 0; }
void wx(int *s) { x = 1; }
void wy(int *s) { y = 1; }
int rx(int *s) { return x; }
int ry(int *s) { return y; }
`,
		InitFunc: "init_lit", Obj: "x",
		Ops: []harness.OpSig{
			{Mnemonic: "a", Func: "wx"},
			{Mnemonic: "b", Func: "wy"},
			{Mnemonic: "c", Func: "rx", HasRet: true},
			{Mnemonic: "d", Func: "ry", HasRet: true},
		},
	}
}

func checkLitmus(t *testing.T, notation string, opts Options) *Result {
	t.Helper()
	impl := litmusImpl()
	test, err := harness.ParseTest("lit", notation, impl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckImpl(impl, test, opts)
	if err != nil {
		t.Fatalf("CheckImpl(%s, %v): %v", notation, opts.Backend, err)
	}
	return res
}

// TestBackendAgreement is the backend ablation: auto, forced rf, and
// forced serial SAT must produce bit-identical verdicts and observation
// sets on litmus shapes across every model, and each must match the
// architectural ground truth. Auto must actually route these to rf.
func TestBackendAgreement(t *testing.T) {
	cases := []struct {
		name, notation string
		// fails[model]: whether the check must find a counterexample
		fails map[memmodel.Model]bool
	}{
		{"store-buffering", "( ad | bc )", map[memmodel.Model]bool{
			memmodel.SequentialConsistency: false,
			memmodel.TSO:                   true,
			memmodel.PSO:                   true,
			memmodel.Relaxed:               true,
		}},
		{"message-passing", "( ab | dc )", map[memmodel.Model]bool{
			memmodel.SequentialConsistency: false,
			memmodel.TSO:                   false,
			memmodel.PSO:                   true,
			memmodel.Relaxed:               true,
		}},
	}
	models := []memmodel.Model{memmodel.SequentialConsistency,
		memmodel.TSO, memmodel.PSO, memmodel.Relaxed}
	for _, tc := range cases {
		for _, model := range models {
			auto := checkLitmus(t, tc.notation, Options{Model: model})
			rf := checkLitmus(t, tc.notation, Options{Model: model, Backend: BackendRF})
			sat := checkLitmus(t, tc.notation, Options{Model: model, Backend: BackendSAT})

			if auto.Stats.Backend != "rf" {
				t.Errorf("%s/%s: auto routed to %q (%s), want rf",
					tc.name, model, auto.Stats.Backend, auto.Stats.RouterDecision)
			}
			if sat.Stats.Backend != "sat" {
				t.Errorf("%s/%s: forced sat ran on %q", tc.name, model, sat.Stats.Backend)
			}
			for _, r := range []*Result{auto, rf, sat} {
				if r.Pass == tc.fails[model] {
					t.Errorf("%s/%s/%s: pass=%v, ground truth fails=%v",
						tc.name, model, r.Stats.Backend, r.Pass, tc.fails[model])
				}
				if !r.Pass && r.Cex == nil {
					t.Errorf("%s/%s/%s: failed without a counterexample", tc.name, model, r.Stats.Backend)
				}
				if !r.Spec.Equal(sat.Spec) {
					t.Errorf("%s/%s/%s: observation set diverges from SAT mining\n%s: %v\nsat: %v",
						tc.name, model, r.Stats.Backend, r.Stats.Backend, r.Spec.All(), sat.Spec.All())
				}
			}
		}
	}
}

// TestRouterSkipsNonFragment: a real datatype (havocked arguments,
// arithmetic, CAS loops) is outside the rf fragment; auto must fall to
// SAT with a reasoned decision and zero rf work.
func TestRouterSkipsNonFragment(t *testing.T) {
	res := check(t, "msn", "T0", Options{Model: memmodel.SequentialConsistency})
	if res.Stats.Backend != "sat" {
		t.Fatalf("msn/T0 ran on %q, want sat", res.Stats.Backend)
	}
	if !strings.HasPrefix(res.Stats.RouterDecision, "sat (") {
		t.Errorf("router decision %q does not explain the SAT fallback", res.Stats.RouterDecision)
	}
	if res.Stats.RFSteps != 0 || res.Stats.RFExecs != 0 {
		t.Errorf("rf counters nonzero on a SAT check: steps=%d execs=%d",
			res.Stats.RFSteps, res.Stats.RFExecs)
	}
}

// TestBackendRFLadderFallback: forcing rf on a non-fragment program
// must not error out — the degradation ladder's SAT rungs take over,
// and the exhausted rf rung is recorded in the budget report.
func TestBackendRFLadderFallback(t *testing.T) {
	res := check(t, "msn", "T0", Options{
		Model: memmodel.SequentialConsistency, Backend: BackendRF,
	})
	if !res.Pass {
		t.Fatalf("msn/T0 on SC must pass; cex:\n%v", res.Cex)
	}
	if res.Stats.Backend != "sat" {
		t.Errorf("verdict backend %q, want sat", res.Stats.Backend)
	}
	if res.Budget == nil || len(res.Budget.Rungs) == 0 || res.Budget.Rungs[0].Name != "rf" {
		t.Fatalf("budget report must record the exhausted rf rung; got %+v", res.Budget)
	}
}

// TestAutoSerialGuard: on a formula far below the parallelism
// thresholds, the auto backend strips portfolio and cube (their setup
// costs exceed the solve), records the decision, and does no parallel
// work. Explicitly forced parallel backends are never overridden.
func TestAutoSerialGuard(t *testing.T) {
	auto := check(t, "msn", "Tpc2", Options{
		Model: memmodel.SequentialConsistency, Portfolio: 4, ShareClauses: true,
	})
	if !auto.Stats.AutoSerial {
		t.Errorf("auto guard did not engage (vars=%d clauses=%d)",
			auto.Stats.CNFVars, auto.Stats.CNFClauses)
	}
	if auto.Stats.SharedExported != 0 || auto.Stats.Cubes != 0 {
		t.Errorf("auto-serial check still did parallel work: exported=%d cubes=%d",
			auto.Stats.SharedExported, auto.Stats.Cubes)
	}
	forced := check(t, "msn", "Tpc2", Options{
		Model: memmodel.SequentialConsistency, Backend: BackendPortfolio, Portfolio: 4, ShareClauses: true,
	})
	if forced.Stats.AutoSerial {
		t.Error("explicit portfolio backend must not be stripped by the guard")
	}
	if auto.Pass != forced.Pass {
		t.Errorf("guard changed the verdict: auto pass=%v, portfolio pass=%v", auto.Pass, forced.Pass)
	}
}

package core

// This file implements the resource-governance layer of the driver:
// per-check budgets (wall clock, conflicts, memory) and the
// degradation ladder that steps a failing check down through cheaper
// strategies — drop cube-and-conquer, drop the portfolio, disable CNF
// preprocessing — before giving up with a structured VerdictUnknown.
// CheckFence's queries are worst-case intractable, so a production
// suite needs every check to terminate with *some* answer: a verdict
// when the budgets allow one, and an explanation when they do not.

import (
	"errors"
	"time"

	"checkfence/internal/faultinject"
	"checkfence/internal/rf"
	"checkfence/internal/sat"
	"checkfence/internal/spec"
)

// Verdict is the three-valued outcome of a check.
type Verdict int

const (
	// VerdictPass: the implementation's observable behavior on this
	// test is included in the serial specification.
	VerdictPass Verdict = iota
	// VerdictFail: a counterexample (or sequential bug) was found.
	VerdictFail
	// VerdictUnknown: every rung of the degradation ladder exhausted
	// its budget; Result.Budget explains what was tried.
	VerdictUnknown
)

func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "pass"
	case VerdictFail:
		return "fail"
	case VerdictUnknown:
		return "unknown"
	}
	return "invalid"
}

// Rung is one step of the degradation ladder: a named strategy the
// check is attempted with. Later rungs are cheaper (less parallelism,
// less preprocessing) and so more likely to fit a budget's constant
// factors, at the cost of raw speed on hard instances.
type Rung struct {
	Name         string
	Backend      Backend
	Portfolio    int
	ShareClauses bool
	Cube         int
	NoPreprocess bool
}

// apply substitutes the rung's strategy into the options.
func (r Rung) apply(opts Options) Options {
	opts.Backend = r.Backend
	opts.Portfolio = r.Portfolio
	opts.ShareClauses = r.ShareClauses
	opts.Cube = r.Cube
	if r.NoPreprocess {
		opts.NoPreprocess = true
	}
	return opts
}

// RungReport records one exhausted ladder rung: what stopped it and
// how long it ran.
type RungReport struct {
	Name     string
	Err      string
	Budget   string // exhausted budget axis, "" when not budget-caused
	Duration time.Duration
}

// BudgetReport explains a check's resource governance: the configured
// budgets and the per-rung attempts. A Result with VerdictUnknown
// always carries one; a definitive Result carries one only when an
// earlier rung was exhausted first (the verdict came from a degraded
// strategy).
type BudgetReport struct {
	Deadline       time.Duration
	ConflictBudget int64
	MemBudgetMB    int
	Rungs          []RungReport
}

func (o Options) budgetReport(rungs []RungReport) *BudgetReport {
	return &BudgetReport{
		Deadline:       o.Deadline,
		ConflictBudget: o.ConflictBudget,
		MemBudgetMB:    o.MemBudgetMB,
		Rungs:          rungs,
	}
}

// ladder returns the effective degradation ladder: Options.Ladder when
// set, otherwise a default derived from the configured strategy —
// configured → without cube-and-conquer → fully serial → serial
// without CNF preprocessing. Rungs that would repeat the previous
// strategy are skipped, so a fully serial configuration gets two rungs
// (itself, then no-preprocess).
func (o Options) ladder() []Rung {
	if len(o.Ladder) > 0 {
		return o.Ladder
	}
	var rungs []Rung
	satBackend := o.Backend
	if o.Backend == BackendRF {
		// A forced rf backend gets its own leading rung; exhaustion
		// (budget, inapplicability) degrades to the SAT rungs below —
		// never the reverse.
		rungs = append(rungs, Rung{Name: "rf", Backend: BackendRF})
		satBackend = BackendSAT
	}
	cur := Rung{Name: "configured", Backend: satBackend, Portfolio: o.Portfolio,
		ShareClauses: o.ShareClauses, Cube: o.Cube, NoPreprocess: o.NoPreprocess}
	rungs = append(rungs, cur)
	if cur.Cube > 1 {
		cur.Cube = 0
		cur.Name = "no-cube"
		rungs = append(rungs, cur)
	}
	if cur.Portfolio > 1 {
		cur.Portfolio, cur.ShareClauses = 0, false
		cur.Name = "serial"
		rungs = append(rungs, cur)
	}
	if !cur.NoPreprocess {
		cur.NoPreprocess = true
		cur.Name = "no-preprocess"
		rungs = append(rungs, cur)
	}
	return rungs
}

// cancelled reports whether Options.Cancel has been closed.
func (o Options) cancelled() bool {
	if o.Cancel == nil {
		return false
	}
	select {
	case <-o.Cancel:
		return true
	default:
		return false
	}
}

// degradable reports whether an attempt's error warrants stepping down
// the ladder: budget exhaustion, a solver-internal Unknown, or a
// recovered worker panic. External cancellation is never degradable —
// the caller asked the check to stop, not to try harder with less.
func degradable(err error, opts Options) bool {
	if opts.cancelled() {
		return false
	}
	if errors.Is(err, sat.ErrBudgetExhausted) {
		return true
	}
	if errors.Is(err, rf.ErrBudget) || errors.Is(err, rf.ErrNotApplicable) {
		// The reads-from rung could not answer; SAT rungs remain.
		return true
	}
	if errors.Is(err, spec.ErrMineLimit) {
		// The enumeration limit is strategy-independent; a cheaper
		// rung hits it identically.
		return false
	}
	if errors.Is(err, spec.ErrSolverUnknown) {
		return true
	}
	var rp *faultinject.RecoveredPanic
	return errors.As(err, &rp)
}

// rungReport summarizes one exhausted attempt.
func rungReport(r Rung, err error, d time.Duration) RungReport {
	rep := RungReport{Name: r.Name, Err: err.Error(), Duration: d}
	var be *sat.ErrBudget
	if errors.As(err, &be) {
		rep.Budget = be.Kind.String()
	}
	return rep
}

// Package core is the CheckFence driver: it orchestrates the pipeline
// of Fig. 3 of the paper — build the harness, lazily unroll loops
// (§3.3), run the range analysis (§3.4), mine the specification
// (§3.2), and perform the inclusion check, producing either PASS or a
// counterexample trace.
package core

import (
	"fmt"
	"runtime"
	"time"

	"checkfence/internal/encode"
	"checkfence/internal/faultinject"
	"checkfence/internal/harness"
	"checkfence/internal/memmodel"
	"checkfence/internal/ranges"
	"checkfence/internal/refimpl"
	"checkfence/internal/sat"
	"checkfence/internal/spec"
	"checkfence/internal/trace"
	"checkfence/internal/validate"
)

// ValidateMode controls independent counterexample validation.
type ValidateMode int

const (
	// ValidateDefault enables validation (the zero value: traces are
	// re-checked unless explicitly disabled).
	ValidateDefault ValidateMode = iota
	// ValidateOff skips validation.
	ValidateOff
	// ValidateOn forces validation (same as the default; exists so
	// callers can be explicit).
	ValidateOn
)

// SpecSource selects how the observation set is obtained.
type SpecSource int

const (
	// SpecSAT mines the set from the implementation itself with the
	// iterative SAT procedure (the default of §3.2).
	SpecSAT SpecSource = iota
	// SpecRef enumerates the set from a small sequential reference
	// implementation (the paper's fast "refset" path).
	SpecRef
)

func (s SpecSource) String() string {
	if s == SpecRef {
		return "refset"
	}
	return "sat"
}

// Options configures a check.
type Options struct {
	// Model is the memory model of the inclusion check.
	Model memmodel.Model
	// Backend selects the verdict engine: BackendAuto (the default)
	// routes per check between the polynomial reads-from engine and
	// SAT via the static cost model; BackendRF/BackendSAT/
	// BackendPortfolio/BackendCube force one strategy (rf still
	// degrades to SAT when it cannot answer).
	Backend Backend
	// DisableRangeAnalysis turns §3.4 off (Fig. 11c comparison).
	DisableRangeAnalysis bool
	// SpecSource selects the mining method.
	SpecSource SpecSource
	// Spec, when non-nil, supplies a precomputed observation set and
	// skips mining entirely (the paper notes sets need not be
	// recomputed after implementation changes).
	Spec *spec.Set
	// MaxBoundRounds bounds the lazy loop unrolling iterations.
	MaxBoundRounds int
	// InitialBounds seeds the per-loop-instance unrolling bounds.
	InitialBounds map[string]int
	// SpecCache, when non-nil, memoizes mined observation sets keyed
	// by (implementation source, test, bounds, spec source). The spec
	// is model-independent (§3.2), so a suite checking several models
	// mines once per key. RunSuite installs a shared cache
	// automatically.
	SpecCache *SpecCache
	// Portfolio, when > 1, races that many diversified SAT solver
	// configurations (restart policy, initial phase, branching
	// permutation) on each single-verdict solve of mining and the
	// inclusion check. Members solve CloneFormula snapshots of one
	// encoded, preprocessed formula, so encoding cost does not scale
	// with the portfolio width. Worth it for the hardest checks
	// (snark, harris); overhead for easy ones.
	Portfolio int
	// ShareClauses lets portfolio members exchange low-LBD learned
	// clauses at restart boundaries (glucose-syrup style).
	ShareClauses bool
	// Cube, when > 1, solves the final inclusion query
	// cube-and-conquer style on that many workers (splitting on
	// memory-order variables) and partitions specification mining
	// over disjoint observation-bit cubes.
	Cube int
	// MaxMineIterations caps the mining enumeration (0 = the spec
	// package default).
	MaxMineIterations int
	// Cancel, when non-nil and closed, aborts the check: SAT solves
	// stop at their next check point and the check returns an error
	// wrapping spec.ErrSolverUnknown. RunSuite wires its context here.
	Cancel <-chan struct{}
	// SimplifyLevel selects the circuit-level minimization applied
	// while encoding: 0 (the default) uses the full pipeline
	// (two-level AIG rewriting plus polarity-aware CNF encoding), 1
	// and 2 select the rewriting level explicitly, and -1 disables
	// both rewriting and polarity-aware encoding (classic two-polarity
	// Tseitin), for comparisons.
	SimplifyLevel int
	// NoPreprocess disables the SatELite-style CNF preprocessing
	// (variable elimination, subsumption, self-subsuming resolution)
	// that otherwise runs before the first solve of mining and of the
	// inclusion check.
	NoPreprocess bool
	// NoInprocess disables the solver's inprocessing layer (clause
	// vivification, on-the-fly subsumption, the tiered learnt-clause
	// database, chronological backtracking), which is otherwise on for
	// every solver of the check.
	NoInprocess bool
	// NoOrderReduce disables the model-aware memory-order encoding
	// reduction (constant-fixing of forced order variables, merging of
	// interchangeable pairs, skeleton-only transitivity).
	NoOrderReduce bool
	// ValidateTraces controls the independent re-validation of every
	// decoded counterexample (internal/validate): the memory-model
	// axioms are re-checked over the concrete event list and each
	// thread is replayed through the reference interpreter. On by
	// default; a validation failure is a hard internal error, never a
	// verdict.
	ValidateTraces ValidateMode
	// Deadline bounds the wall-clock time of the whole check, across
	// every ladder rung (0 = none). A check that exhausts it returns
	// VerdictUnknown with a BudgetReport rather than an error.
	Deadline time.Duration
	// ConflictBudget caps the conflicts of each SAT solve (0 = none).
	ConflictBudget int64
	// MemBudgetMB approximately caps each solver's learned-clause
	// memory, in MiB (0 = none). The solver sheds clauses before
	// declaring the budget exhausted.
	MemBudgetMB int
	// Ladder overrides the degradation ladder. Empty selects the
	// default derived from the configured strategy: configured →
	// no-cube → serial → no-preprocess.
	Ladder []Rung
	// Faults arms deterministic fault injection at the solver,
	// encoder, and mining hook points (tests and chaos runs only).
	Faults faultinject.Faults
	// Assume restricts the inclusion check (both the error phase and
	// the exclusion phase) to one cube of a cross-process
	// cube-and-conquer fan-out. Each literal is a signed 1-based
	// ordinal into the encoder's deterministic memory-order variable
	// list (encode.Encoder.OrderSatVars at the check's bounds):
	// +k asserts order variable k-1 true, -k asserts it false.
	// Ordinals rather than raw SAT variables make the cube stable
	// across processes — any process that encodes the same description
	// maps ordinal k to the same variable. Ordinals that fall outside
	// the list at the worker's bounds are dropped (every worker drops
	// them identically, so the cubes stay jointly exhaustive — the
	// property fan-out aggregation relies on; disjointness is not
	// required for soundness, only to avoid duplicate work). Mining
	// and bound probing ignore the field: the specification and the
	// converged bounds are cube-independent. See internal/fleet for
	// the coordinator that plans and aggregates such cubes.
	Assume []int
	// Sweep controls whether this job may join a model-sweep group
	// when checked through RunSuite: jobs identical in everything but
	// Model are grouped onto one shared selector-guarded encoding and
	// each model's verdict is solved under assumption literals, with
	// the specification mined once and bound probing shared
	// (SweepAuto, the default, joins when the suite sweeps). SweepOff
	// opts the job out. Direct Check/CheckImpl calls ignore the field:
	// a sweep needs at least two models. A group shares one
	// Deadline window across its models; a member that falls back to
	// an independent check runs under whatever remains of that window,
	// so the whole unit stays within the configured budget.
	Sweep SweepMode

	// front, when non-nil, memoizes harness.Build and per-bounds
	// Unroll results across the members and rounds of a sweep group.
	// Set by RunSuite's group scheduler only.
	front *frontCache
}

// encodeConfig maps the simplification options onto the encoder's
// minimization configuration.
func (o Options) encodeConfig() encode.Config {
	cfg := encode.DefaultConfig()
	switch o.SimplifyLevel {
	case -1:
		cfg.RewriteLevel = 0
		cfg.PolarityAware = false
	case 1, 2:
		cfg.RewriteLevel = o.SimplifyLevel
	}
	cfg.Preprocess = !o.NoPreprocess
	cfg.Inprocess = !o.NoInprocess
	cfg.OrderReduce = !o.NoOrderReduce
	cfg.Faults = o.Faults
	return cfg
}

// strategy maps the parallelism options onto a spec.Strategy
// accumulating into ps.
func (o Options) strategy(ps *spec.ParStats) spec.Strategy {
	return spec.Strategy{
		Portfolio:         o.Portfolio,
		ShareClauses:      o.ShareClauses,
		Cube:              o.Cube,
		MaxMineIterations: o.MaxMineIterations,
		Stats:             ps,
		Faults:            o.Faults,
	}
}

// Stats quantifies one check, mirroring the columns of the paper's
// Fig. 10 table plus the phase breakdown of Fig. 11b.
type Stats struct {
	Instrs int // unrolled instructions
	Loads  int
	Stores int

	CNFVars    int // final inclusion-check formula size (post-minimization)
	CNFClauses int

	// Formula-minimization measurements of the inclusion check: gate
	// count of the circuit, CNF size before preprocessing, and what
	// each preprocessing technique removed. Pre* equal the final
	// counts when preprocessing is disabled.
	Gates               int
	PreCNFVars          int
	PreCNFClauses       int
	VarsEliminated      int
	ClausesSubsumed     int
	ClausesStrengthened int
	PreprocessTime      time.Duration // included in RefuteTime

	ObsSetSize     int
	MineIterations int
	BoundRounds    int

	// Multi-backend routing: the backend that produced the verdict
	// ("rf" or "sat"), the router's reasoning, whether the auto
	// backend's small-instance guard stripped portfolio/cube from a
	// SAT solve, and the rf engine's work counters (zero on pure SAT
	// checks).
	Backend        string
	RouterDecision string
	AutoSerial     bool
	RFSteps        int
	RFExecs        int
	RFConsistent   int
	RFSplits       int

	// Spec-cache traffic of this check: how many of its mining
	// requests were served from Options.SpecCache vs. mined fresh.
	// Both stay zero when no cache is configured.
	SpecCacheHits   int
	SpecCacheMisses int
	// SpecCacheCorrupt counts corrupt cache files quarantined while
	// serving this check's mining requests.
	SpecCacheCorrupt int
	// SpecCacheResumed counts mines of this check that resumed from an
	// on-disk checkpoint left by an earlier interrupted mine.
	SpecCacheResumed int

	// AssumedLits counts the cube assumption literals applied to the
	// inclusion check (cross-process fan-out; zero outside fleet
	// workers). AssumeDropped counts wire ordinals that fell outside
	// the order-variable list at this check's bounds.
	AssumedLits   int
	AssumeDropped int

	// Intra-check parallelism counters: cube-and-conquer cubes issued
	// and refuted (phase 2 plus partitioned mining), and clause-sharing
	// traffic summed over portfolio members. All zero on serial runs.
	Cubes          int
	CubesRefuted   int
	SharedExported int64
	SharedImported int64
	SharedUseful   int64

	// Inprocessing work of the inclusion check (base solver plus
	// portfolio/cube workers): literals removed by clause vivification
	// (and the clauses they came from), learnt clauses deleted by
	// on-the-fly subsumption, and conflicts resolved by a chronological
	// backtrack. Zero with Options.NoInprocess.
	VivifiedLits     int64
	VivifiedClauses  int64
	SubsumedLearnts  int64
	ChronoBacktracks int64
	// Learnt-database tier sizes of the inclusion check's base solver
	// at the end of the check.
	TierCore  int
	TierMid   int
	TierLocal int

	// Order-encoding reduction of the inclusion-check formula: order
	// variables fixed to constants beyond the baseline program-order
	// rules, and pairs merged into an already-allocated variable. Zero
	// with Options.NoOrderReduce.
	OrderVarsFixed  int
	OrderVarsMerged int

	// Model-sweep counters (RunSuite sweep groups; all zero on
	// independent checks). SweepGroups is 1 when the verdict came from
	// a shared sweep encoding and SweepModels counts the models that
	// encoding served; SelectorVars/SelectorUnits size the selector
	// instrumentation. EncodesReused is 1 on results that reused the
	// group's encoding instead of building their own, and SeededObs
	// counts specification observations whose exclusion clauses such a
	// result shared rather than re-encoded. SweepEarlyExit is 1 when
	// the verdict came from replaying a stronger model's
	// counterexample under this model's axioms without solving.
	// FrontCacheHits counts harness build/unroll results served from
	// the group's front cache (reported on the group leader). Shared
	// group costs — mining, encoding, preprocessing, probe time,
	// solver counters — are attributed to the leader (the strongest
	// model); every group member reports the group's wall-clock time
	// as its TotalTime.
	SweepGroups    int
	SweepModels    int
	SelectorVars   int
	SelectorUnits  int
	EncodesReused  int
	SeededObs      int
	SweepEarlyExit int
	FrontCacheHits int

	ProbeTime   time.Duration // lazy loop bound probes
	MineTime    time.Duration // specification mining
	EncodeTime  time.Duration // building the inclusion CNF
	RefuteTime  time.Duration // SAT solving of the inclusion check
	TotalTime   time.Duration
	SolverStats sat.Stats

	// AllocBytes is the total heap allocation of the check, the
	// memory proxy for the Fig. 10b chart.
	AllocBytes uint64
}

// Result is the outcome of a check.
type Result struct {
	Impl  string
	Test  string
	Model memmodel.Model

	// Verdict is the three-valued outcome; Pass mirrors it for
	// convenience (Pass == (Verdict == VerdictPass)).
	Verdict Verdict
	Pass    bool
	SeqBug  bool // a serial execution reaches a runtime error
	Cex     *trace.Trace

	// Budget is non-nil when resource governance shaped this result:
	// always for VerdictUnknown (every ladder rung exhausted), and for
	// definitive verdicts that a degraded rung produced.
	Budget *BudgetReport

	Spec  *spec.Set
	Stats Stats
}

// Check runs CheckFence on an implementation (by registry name) and a
// test (by Fig. 8 name or notation).
func Check(implName, testName string, opts Options) (*Result, error) {
	impl, err := harness.Get(implName)
	if err != nil {
		return nil, err
	}
	test, err := harness.GetTest(impl, testName)
	if err != nil {
		return nil, err
	}
	return CheckImpl(impl, test, opts)
}

// CheckImpl runs CheckFence on explicit implementation and test
// structures. It executes the degradation ladder: the check is
// attempted with the configured strategy and, when an attempt fails
// degradably (budget exhausted, solver-internal Unknown, recovered
// worker panic), retried with progressively cheaper strategies until
// one produces a verdict, the deadline passes, or the ladder is
// exhausted — in which case the result is VerdictUnknown with a
// BudgetReport, not an error.
func CheckImpl(impl *harness.Impl, test *harness.Test, opts Options) (*Result, error) {
	start := time.Now()
	opts = opts.normalizeBackend()
	if opts.MaxBoundRounds <= 0 {
		opts.MaxBoundRounds = 12
	}
	var deadline time.Time
	if opts.Deadline > 0 {
		deadline = time.Now().Add(opts.Deadline)
	}
	var reports []RungReport
	for i, rung := range opts.ladder() {
		if i > 0 && !deadline.IsZero() && !time.Now().Before(deadline) {
			break // no wall-clock left to retry with
		}
		attemptStart := time.Now()
		res, err := checkAttempt(impl, test, rung.apply(opts), deadline)
		if err == nil {
			if len(reports) > 0 {
				// The verdict came from a degraded rung; record the
				// path that led there.
				res.Budget = opts.budgetReport(reports)
			}
			return res, nil
		}
		if !degradable(err, opts) {
			return nil, err
		}
		reports = append(reports, rungReport(rung, err, time.Since(attemptStart)))
	}
	res := &Result{
		Impl: impl.Name, Test: test.Name, Model: opts.Model,
		Verdict: VerdictUnknown,
		Budget:  opts.budgetReport(reports),
	}
	res.Stats.TotalTime = time.Since(start)
	return res, nil
}

// checkAttempt runs one full pipeline pass (unroll, probe bounds,
// mine, inclusion check) under a single ladder rung's strategy.
func checkAttempt(impl *harness.Impl, test *harness.Test, opts Options,
	deadline time.Time) (res *Result, err error) {

	start := time.Now()
	res = &Result{Impl: impl.Name, Test: test.Name, Model: opts.Model}
	defer func() {
		if res == nil {
			return // error paths return a nil result
		}
		if err == nil {
			if res.Pass {
				res.Verdict = VerdictPass
			} else {
				res.Verdict = VerdictFail
			}
		}
	}()
	// TotalTime is set here, once, so every return path (early
	// counterexample, bounds-already-sufficient, converged re-check)
	// reports it consistently.
	defer func() {
		if res != nil {
			res.Stats.TotalTime = time.Since(start)
		}
	}()
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	defer func() {
		if res == nil {
			return
		}
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		res.Stats.AllocBytes = memAfter.TotalAlloc - memBefore.TotalAlloc
	}()

	built, err := opts.buildHarness(impl, test)
	if err != nil {
		return nil, err
	}

	// Lazy loop unrolling, in the paper's §3.3 order: run the regular
	// check restricted to the current bounds first. If it finds a
	// counterexample, report it — the loop bounds are irrelevant in
	// that case. Only if the check passes, probe for executions that
	// exceed the bounds; bounds grow until the probe is refuted, and
	// the full check then runs once more at the converged bounds
	// (intermediate bound levels need no full check: they only add
	// executions, which the final check covers).
	bounds := map[string]int{}
	for k, v := range opts.InitialBounds {
		bounds[k] = v
	}
	unrolled, err := opts.unrollHarness(built, bounds)
	if err != nil {
		return nil, err
	}
	info := analysisFor(unrolled, opts)
	res.Stats.BoundRounds = 1
	done, err := runCheck(res, impl, test, built, unrolled, info, bounds, opts, deadline)
	if err != nil {
		return nil, err
	}
	if done {
		return res, nil
	}

	grewAny := false
	for round := 0; ; round++ {
		if round >= opts.MaxBoundRounds {
			return nil, fmt.Errorf("core: loop bounds did not converge after %d rounds", round)
		}
		probeStart := time.Now()
		grew, err := probeBounds(unrolled, info, probeModel(opts.Model), bounds, opts, deadline)
		res.Stats.ProbeTime += time.Since(probeStart)
		if err != nil {
			return nil, err
		}
		if !grew {
			break
		}
		grewAny = true
		res.Stats.BoundRounds = round + 2
		unrolled, err = opts.unrollHarness(built, bounds)
		if err != nil {
			return nil, err
		}
		info = analysisFor(unrolled, opts)
	}
	if !grewAny {
		return res, nil // initial bounds were already sufficient
	}
	if _, err := runCheck(res, impl, test, built, unrolled, info, bounds, opts, deadline); err != nil {
		return nil, err
	}
	return res, nil
}

// runCheck performs mining and the inclusion check at the current
// bounds, filling res. It reports done=true when a counterexample (or
// sequential bug) was found, in which case bounds need not grow.
func runCheck(res *Result, impl *harness.Impl, test *harness.Test,
	built *harness.Built, unrolled *harness.Unrolled, info *ranges.Info,
	bounds map[string]int, opts Options, deadline time.Time) (bool, error) {

	res.Stats.Instrs = unrolled.Instrs
	res.Stats.Loads = unrolled.Loads
	res.Stats.Stores = unrolled.Stores

	// Parallel-work counters accumulated across mining and the
	// inclusion check of this invocation.
	var pstats spec.ParStats
	defer func() {
		res.Stats.Cubes += pstats.Cubes
		res.Stats.CubesRefuted += pstats.CubesRefuted
		res.Stats.SharedExported += pstats.SharedExported
		res.Stats.SharedImported += pstats.SharedImported
		res.Stats.SharedUseful += pstats.SharedUseful
		res.Stats.VivifiedClauses += pstats.VivifiedClauses
		res.Stats.VivifiedLits += pstats.VivifiedLits
		res.Stats.SubsumedLearnts += pstats.SubsumedLearnts
		res.Stats.ChronoBacktracks += pstats.ChronoBacktracks
	}()

	// Multi-backend routing: run the reads-from engine when the
	// backend selection and cost model pick it. Under auto, an rf
	// budget failure falls back to SAT within this same attempt (no
	// ladder hop); under a forced rf backend the error propagates so
	// the ladder's SAT rungs take over.
	dec := routeRF(opts, unrolled)
	res.Stats.RouterDecision = dec.reason
	if opts.Backend == BackendRF && !dec.useRF {
		return false, dec.err
	}
	if dec.useRF {
		done, rfErr := runCheckRF(res, built, unrolled, dec.prog, opts)
		if rfErr == nil {
			res.Stats.Backend = "rf"
			return done, nil
		}
		if opts.Backend == BackendRF || !rfFallbackable(rfErr) {
			return false, rfErr
		}
		res.Stats.RouterDecision = "sat (rf fell back: " + rfErr.Error() + ")"
	}
	res.Stats.Backend = "sat"

	// Specification: mined once per (impl, test, bounds, source) via
	// mineSpec (shared with the sweep scheduler).
	mineStart := time.Now()
	theSpec, seqTrace, err := mineSpec(impl, test, built, unrolled, info, bounds,
		opts, deadline, &pstats, res)
	if err != nil {
		return false, err
	}
	if seqTrace != nil {
		res.SeqBug = true
		res.Pass = false
		res.Cex = seqTrace
		res.Stats.MineTime += time.Since(mineStart)
		if err := validateCex(res.Cex, built, unrolled, opts); err != nil {
			return false, err
		}
		return true, nil
	}
	res.Spec = theSpec
	res.Stats.ObsSetSize = theSpec.Len()
	res.Stats.MineTime += time.Since(mineStart)

	// Inclusion check. The formula is encoded and preprocessed once;
	// any configured parallelism (portfolio, cube-and-conquer) solves
	// CloneFormula snapshots of it, so encoding cost never scales with
	// the worker count.
	encodeStart := time.Now()
	enc := encode.NewWithConfig(opts.Model, info, opts.encodeConfig())
	applyLimits(enc, opts, deadline)
	if err := enc.Encode(unrolled.Threads); err != nil {
		return false, err
	}
	enc.AssertNoOverflow()
	res.Stats.EncodeTime += time.Since(encodeStart)

	refuteStart := time.Now()
	strat := opts.solveStrategy(enc, &pstats, res)
	if len(opts.Assume) > 0 {
		strat.Assume = assumeLits(enc, opts.Assume)
		res.Stats.AssumedLits = len(strat.Assume)
		res.Stats.AssumeDropped = len(opts.Assume) - len(strat.Assume)
	}
	cex, err := spec.CheckInclusionWith(enc, built.Entries, theSpec, strat)
	res.Stats.RefuteTime += time.Since(refuteStart)
	if err != nil {
		return false, err
	}
	st := enc.S.Stats()
	res.Stats.CNFVars = st.Vars
	res.Stats.CNFClauses = st.Clauses
	res.Stats.SolverStats = st
	res.Stats.Gates = enc.B.NumGates()
	res.Stats.PreCNFVars = st.PreVars
	res.Stats.PreCNFClauses = st.PreClauses
	res.Stats.VarsEliminated = st.VarsEliminated
	res.Stats.ClausesSubsumed = st.ClausesSubsumed
	res.Stats.ClausesStrengthened = st.ClausesStrengthened
	res.Stats.PreprocessTime = st.PreprocessTime
	// Base-solver inprocessing work; the parallel workers' share is
	// folded in from pstats when runCheck returns.
	res.Stats.VivifiedClauses += st.VivifiedClauses
	res.Stats.VivifiedLits += st.VivifiedLits
	res.Stats.SubsumedLearnts += st.SubsumedLearnts
	res.Stats.ChronoBacktracks += st.ChronoBacktracks
	res.Stats.TierCore = st.TierCore
	res.Stats.TierMid = st.TierMid
	res.Stats.TierLocal = st.TierLocal
	res.Stats.OrderVarsFixed = enc.OrderVarsFixed
	res.Stats.OrderVarsMerged = enc.OrderVarsMerged
	if st.PreClauses == 0 {
		// Preprocessing did not run; pre-minimization size is the
		// final size.
		res.Stats.PreCNFVars = st.Vars
		res.Stats.PreCNFClauses = st.Clauses
	}

	if cex == nil {
		res.Pass = true
		return false, nil // passed at these bounds; caller probes
	}
	res.Pass = false
	res.Cex = trace.Build(enc, built, unrolled, cex)
	if err := validateCex(res.Cex, built, unrolled, opts); err != nil {
		return false, err
	}
	return true, nil
}

// mineSpec obtains the observation set for a check at the given
// bounds: Options.Spec verbatim, the refset enumeration, or the §3.2
// SAT mine — through the spec cache when one is configured (the
// mining closure is single-flighted across concurrent checks, and the
// escaping serialEnc is only ever set by this check's own invocation:
// the cache never shares failures). Cache traffic and the iteration
// count land in res.Stats. When a serial execution reaches a runtime
// error, the decoded sequential-bug trace is returned instead of a
// set; the caller owns its validation.
func mineSpec(impl *harness.Impl, test *harness.Test, built *harness.Built,
	unrolled *harness.Unrolled, info *ranges.Info, bounds map[string]int,
	opts Options, deadline time.Time, pstats *spec.ParStats,
	res *Result) (*spec.Set, *trace.Trace, error) {

	if opts.Spec != nil {
		return opts.Spec, nil, nil
	}
	key := specKey(impl, test, bounds, opts.SpecSource)
	var serialEnc *encode.Encoder
	mine := func(resume *spec.Set, resumeIters int) (*spec.Set, int, error) {
		switch opts.SpecSource {
		case SpecRef:
			set, err := refimpl.Enumerate(impl, test)
			return set, 0, err
		default:
			serialEnc = encode.NewWithConfig(memmodel.Serial, info, opts.encodeConfig())
			applyLimits(serialEnc, opts, deadline)
			if err := serialEnc.Encode(unrolled.Threads); err != nil {
				return nil, 0, err
			}
			serialEnc.AssertNoOverflow()
			strat := opts.solveStrategy(serialEnc, pstats, res)
			strat.Resume = resume
			strat.ResumeIterations = resumeIters
			if cache := opts.SpecCache; cache != nil {
				// Periodically mirror the partial set to disk so an
				// interrupted mine (budget, crash, ^C) resumes
				// instead of restarting.
				strat.Checkpoint = func(partial *spec.Set, iterations int) {
					cache.StoreCheckpoint(key, partial, iterations)
				}
			}
			mined, stats, err := spec.MineWith(serialEnc, built.Entries, strat)
			return mined, stats.Iterations, err
		}
	}
	var (
		mined      *spec.Set
		iterations int
		err        error
	)
	if opts.SpecCache != nil {
		var outcome CacheOutcome
		mined, iterations, outcome, err = opts.SpecCache.GetOrMine(key, mine)
		if outcome.Hit {
			res.Stats.SpecCacheHits++
		} else {
			res.Stats.SpecCacheMisses++
		}
		if outcome.Corrupt {
			res.Stats.SpecCacheCorrupt++
		}
		if outcome.Resumed {
			res.Stats.SpecCacheResumed++
		}
	} else {
		mined, iterations, err = mine(nil, 0)
	}
	if err != nil {
		if seqBug, ok := err.(*spec.SeqBugError); ok && serialEnc != nil {
			cex := &spec.Counterexample{Obs: seqBug.Obs, IsErr: true,
				Err: "runtime error in serial execution"}
			return nil, trace.Build(serialEnc, built, unrolled, cex), nil
		}
		return nil, nil, err
	}
	res.Stats.MineIterations = iterations
	return mined, nil, nil
}

// assumeLits maps wire-format cube assumptions — signed 1-based
// ordinals into the encoder's deterministic memory-order variable
// list — onto solver literals. Out-of-range ordinals are dropped:
// every process at the same bounds drops the same ones, so a fan-out's
// cubes remain jointly exhaustive (see Options.Assume).
func assumeLits(e *encode.Encoder, assume []int) []sat.Lit {
	ord := e.OrderSatVars()
	lits := make([]sat.Lit, 0, len(assume))
	for _, a := range assume {
		k, neg := a, false
		if k < 0 {
			k, neg = -k, true
		}
		if k == 0 || k > len(ord) {
			continue
		}
		lits = append(lits, sat.MkLit(ord[k-1], neg))
	}
	return lits
}

// validateCex independently re-checks a decoded counterexample (axiom
// re-verification plus interpreter replay). A failure means CheckFence
// itself decoded or encoded wrongly — an internal error carrying the
// first violated axiom and the suspect trace, never a verdict.
func validateCex(t *trace.Trace, built *harness.Built, unrolled *harness.Unrolled,
	opts Options) error {

	if opts.ValidateTraces == ValidateOff {
		return nil
	}
	if err := validate.Check(t, unrolled.Threads, built.Unit.Prog); err != nil {
		return fmt.Errorf("core: internal error: counterexample failed validation: %w\nsuspect trace:\n%s", err, t)
	}
	return nil
}

// applyLimits wires the check's resource governance into an encoder:
// Options.Cancel becomes the solver's stop predicate (long solves
// abort promptly on suite cancellation), the deadline and the
// conflict/memory budgets arm the solver's typed-budget machinery,
// and both cancellation and the deadline also abort the encoding
// phase itself, which can dominate a short deadline on big harnesses.
func applyLimits(e *encode.Encoder, opts Options, deadline time.Time) {
	cancel := opts.Cancel
	if cancel != nil {
		e.S.SetStop(func() bool {
			select {
			case <-cancel:
				return true
			default:
				return false
			}
		})
	}
	if !deadline.IsZero() {
		e.S.SetDeadline(deadline)
	}
	if opts.ConflictBudget > 0 {
		e.S.SetBudget(opts.ConflictBudget)
	}
	if opts.MemBudgetMB > 0 {
		e.S.SetMemBudget(int64(opts.MemBudgetMB) << 20)
	}
	if cancel != nil || !deadline.IsZero() {
		e.Cfg.Abort = func() error {
			if cancel != nil {
				select {
				case <-cancel:
					return fmt.Errorf("core: check cancelled during encoding: %w",
						spec.ErrSolverUnknown)
				default:
				}
			}
			if !deadline.IsZero() && !time.Now().Before(deadline) {
				return fmt.Errorf("core: encoding: %w",
					&sat.ErrBudget{Kind: sat.BudgetDeadline})
			}
			return nil
		}
	}
}

func analysisFor(unrolled *harness.Unrolled, opts Options) *ranges.Info {
	if opts.DisableRangeAnalysis {
		return ranges.Disabled()
	}
	return ranges.Analyze(unrolled.Bodies)
}

// probeModel selects the model loop-bound probes run under. Probing
// under Relaxed does not generally terminate: its same-address
// load-load reordering lets a retry loop re-read a stale value in
// every iteration, so executions exceeding any finite bound exist
// (e.g. the fenced msn enqueue on test Ti2). The paper reports all
// studied loops as statically bounded, which holds under sequential
// consistency; we therefore determine bounds from the SC executions
// (which cover all serial executions needed for mining) and perform
// the relaxed inclusion check within those unrollings. Counterexample
// search is unaffected in practice — reordering bugs appear within
// the SC-derived bounds — and any residual incompleteness is inherent
// to bounded unrolling.
func probeModel(m memmodel.Model) memmodel.Model {
	if memmodel.SequentialConsistency.StrongerThan(m) && m != memmodel.SequentialConsistency {
		return memmodel.SequentialConsistency
	}
	return m
}

// probeBounds checks whether any loop can exceed its current bound
// under the given model; if so it increments those bounds and reports
// growth.
func probeBounds(unrolled *harness.Unrolled,
	info *ranges.Info, model memmodel.Model, bounds map[string]int,
	opts Options, deadline time.Time) (bool, error) {

	hasMarkers := false
	for _, li := range unrolled.Loops {
		if !li.Spin {
			hasMarkers = true
			break
		}
	}
	if !hasMarkers {
		return false, nil
	}
	probe := encode.NewWithConfig(model, info, opts.encodeConfig())
	applyLimits(probe, opts, deadline)
	if err := probe.Encode(unrolled.Threads); err != nil {
		return false, err
	}
	probe.AssertSomeOverflow()
	switch probe.S.Solve() {
	case sat.Sat:
	case sat.Unsat:
		return false, nil
	default:
		if be := probe.S.BudgetErr(); be != nil {
			return false, fmt.Errorf("core: bound probe: %w: %w", spec.ErrSolverUnknown, be)
		}
		return false, fmt.Errorf("core: bound probe: %w", spec.ErrSolverUnknown)
	}
	grew := false
	for _, id := range probe.OverflowingLoops() {
		key, ok := unrolled.LoopKey(id)
		if !ok {
			return false, fmt.Errorf("core: unknown loop id %d", id)
		}
		bounds[key] = unrolled.BoundFor(id) + 1
		grew = true
	}
	if !grew {
		return false, fmt.Errorf("core: overflow probe satisfiable but no loop flagged")
	}
	return true, nil
}

package core

// This file plans cross-process cube-and-conquer fan-out: it splits
// one check into assumption cubes a coordinator can ship to fleet
// workers as serializable descriptions (job.Check.Assume). The cubes
// are expressed as signed 1-based ordinals into the encoder's
// deterministic memory-order variable list — see Options.Assume for
// the wire semantics and why ordinals (not raw SAT variables) are the
// cross-process currency.

import (
	"fmt"
	"time"

	"checkfence/internal/encode"
	"checkfence/internal/harness"
	"checkfence/internal/sat"
)

// CubeAssumptions plans a fan-out of the check into up to 2^depth
// cubes: it builds and encodes the check at its initial bounds, runs
// the cube-and-conquer splitter biased to memory-order variables (the
// same split the in-process solver uses, sat.CubeSplitter), and
// renders the chosen variables as wire-format ordinals. The returned
// cubes are jointly exhaustive and pairwise disjoint over the split
// variables: a coordinator dispatching one description per cube and
// aggregating any-FAIL / all-PASS reconstructs the undivided verdict.
//
// A nil result (with nil error) means the check offers no useful
// split (fewer than two cubes) and should run undivided.
func CubeAssumptions(impl *harness.Impl, test *harness.Test, opts Options, depth int) ([][]int, error) {
	if depth <= 0 {
		return nil, fmt.Errorf("core: cube depth %d must be positive", depth)
	}
	opts = opts.normalizeBackend()
	var deadline time.Time
	if opts.Deadline > 0 {
		deadline = time.Now().Add(opts.Deadline)
	}
	built, err := opts.buildHarness(impl, test)
	if err != nil {
		return nil, err
	}
	bounds := map[string]int{}
	for k, v := range opts.InitialBounds {
		bounds[k] = v
	}
	unrolled, err := opts.unrollHarness(built, bounds)
	if err != nil {
		return nil, err
	}
	enc := encode.NewWithConfig(opts.Model, analysisFor(unrolled, opts), opts.encodeConfig())
	applyLimits(enc, opts, deadline)
	if err := enc.Encode(unrolled.Threads); err != nil {
		return nil, err
	}
	enc.AssertNoOverflow()

	orderVars := enc.OrderSatVars()
	ordinal := make(map[int]int, len(orderVars)) // SAT var -> 1-based ordinal
	for i, v := range orderVars {
		ordinal[v] = i + 1
	}
	cubes := sat.CubeSplitter{Depth: depth, Prefer: orderVars}.Split(enc.S)
	if len(cubes) < 2 {
		return nil, nil
	}
	// Keep only split variables that are order variables: anything
	// else has no stable cross-process identity. Dropping a variable
	// from every cube merges sign-twin cubes — exhaustiveness is
	// preserved, the fan-out just gets narrower.
	var ordinals []int
	for _, l := range cubes[0] {
		if k, ok := ordinal[l.Var()]; ok {
			ordinals = append(ordinals, k)
		}
	}
	if len(ordinals) == 0 {
		return nil, nil
	}
	out := make([][]int, 1<<uint(len(ordinals)))
	for mask := range out {
		cube := make([]int, len(ordinals))
		for i, k := range ordinals {
			if mask>>uint(i)&1 == 1 {
				cube[i] = -k
			} else {
				cube[i] = k
			}
		}
		out[mask] = cube
	}
	return out, nil
}

package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"checkfence/internal/harness"
	"checkfence/internal/memmodel"
	"checkfence/internal/spec"
)

// modelSweep builds the canonical small suite: one cheap
// (implementation, test) pair checked under all four models. The spec
// is model-independent, so a shared cache should mine exactly once.
func modelSweep(impl, test string) []Job {
	models := []memmodel.Model{
		memmodel.SequentialConsistency,
		memmodel.TSO,
		memmodel.PSO,
		memmodel.Relaxed,
	}
	jobs := make([]Job, len(models))
	for i, m := range models {
		jobs[i] = Job{Impl: impl, Test: test, Opts: Options{Model: m}}
	}
	return jobs
}

func requireAllRan(t *testing.T, results []SuiteResult) {
	t.Helper()
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d (%s/%s %v): %v", i, r.Job.Impl, r.Job.Test, r.Job.Opts.Model, r.Err)
		}
		if r.Res == nil {
			t.Fatalf("job %d: nil result", i)
		}
	}
}

// TestRunSuiteMatchesSerial locks in the core promise of the parallel
// engine: for the same jobs, serial and parallel runs produce
// identical verdicts and identical observation sets, and results[i]
// always corresponds to jobs[i].
func TestRunSuiteMatchesSerial(t *testing.T) {
	jobs := modelSweep("ms2", "T0")
	serial := RunSuite(jobs, SuiteOptions{Parallelism: 1})
	parallel := RunSuite(jobs, SuiteOptions{Parallelism: 4})
	requireAllRan(t, serial)
	requireAllRan(t, parallel)
	for i := range jobs {
		s, p := serial[i], parallel[i]
		if s.Job.Impl != jobs[i].Impl || s.Job.Opts.Model != jobs[i].Opts.Model ||
			p.Job.Impl != jobs[i].Impl || p.Job.Opts.Model != jobs[i].Opts.Model {
			t.Errorf("result %d not aligned with its job", i)
		}
		if s.Res.Model != jobs[i].Opts.Model || p.Res.Model != jobs[i].Opts.Model {
			t.Errorf("result %d ran under the wrong model", i)
		}
		if s.Res.Pass != p.Res.Pass || s.Res.SeqBug != p.Res.SeqBug {
			t.Errorf("job %d: serial pass=%v seqbug=%v, parallel pass=%v seqbug=%v",
				i, s.Res.Pass, s.Res.SeqBug, p.Res.Pass, p.Res.SeqBug)
		}
		if !s.Res.Spec.Equal(p.Res.Spec) {
			t.Errorf("job %d: observation sets differ between serial and parallel", i)
		}
		if s.Res.Stats.TotalTime <= 0 || p.Res.Stats.TotalTime <= 0 {
			t.Errorf("job %d: TotalTime not recorded (serial %v, parallel %v)",
				i, s.Res.Stats.TotalTime, p.Res.Stats.TotalTime)
		}
	}
}

// TestRunSuiteMinesOnce asserts the memoization contract for
// independent jobs: a suite checking the same (implementation, test,
// bounds) under several models mines the observation set exactly once,
// and every other job reports a cache hit. Sweep grouping is off —
// a sweep group mines once for the whole group and touches the cache
// once, which is a different (stronger) sharing contract.
func TestRunSuiteMinesOnce(t *testing.T) {
	jobs := modelSweep("ms2", "T0")
	var mined atomic.Int64
	cache := NewSpecCache("")
	results := RunSuite(jobs, SuiteOptions{
		Parallelism: 4,
		SpecCache:   cache,
		Sweep:       SweepOff,
	})
	requireAllRan(t, results)
	hits, misses := 0, 0
	for _, r := range results {
		hits += r.Res.Stats.SpecCacheHits
		misses += r.Res.Stats.SpecCacheMisses
		if r.Res.Stats.BoundRounds != 1 {
			// The once-per-suite guarantee below relies on a single
			// mining request per job; a bounds growth would add more
			// (with distinct keys). ms2/T0 converges immediately.
			t.Fatalf("ms2/T0 took %d bound rounds, expected 1", r.Res.Stats.BoundRounds)
		}
	}
	if misses != 1 || hits != len(jobs)-1 {
		t.Errorf("cache traffic: %d misses, %d hits; want 1 and %d", misses, hits, len(jobs)-1)
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d sets, want 1", cache.Len())
	}

	// The counting variant: route the same key through GetOrMine
	// directly and confirm the miner does not run again.
	set, _, out, err := cache.GetOrMine(fixedKey(t, jobs[0]), func(*spec.Set, int) (*spec.Set, int, error) {
		mined.Add(1)
		return nil, 0, errors.New("must not re-mine")
	})
	if err != nil || !out.Hit || set == nil {
		t.Fatalf("GetOrMine after suite: outcome=%+v err=%v", out, err)
	}
	if mined.Load() != 0 {
		t.Errorf("miner ran %d times for a cached key", mined.Load())
	}
}

// fixedKey recomputes the spec-cache key RunSuite used for a job whose
// bounds converged at the initial (empty) unrolling bounds.
func fixedKey(t *testing.T, job Job) string {
	t.Helper()
	impl, err := harness.Get(job.Impl)
	if err != nil {
		t.Fatal(err)
	}
	test, err := harness.GetTest(impl, job.Test)
	if err != nil {
		t.Fatal(err)
	}
	return specKey(impl, test, map[string]int{}, job.Opts.SpecSource)
}

// TestRunSuiteCancellation: a cancelled context stops the suite —
// queued jobs never start and report ctx.Err().
func TestRunSuiteCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before the suite starts: every job must be skipped
	jobs := modelSweep("ms2", "T0")
	results := RunSuite(jobs, SuiteOptions{Parallelism: 2, Context: ctx})
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d: err = %v, want context.Canceled", i, r.Err)
		}
		if r.Res != nil {
			t.Errorf("job %d: got a result from a cancelled suite", i)
		}
	}
}

// TestRunSuiteMidFlightCancellation cancels while checks are running
// and requires the suite to return promptly with every remaining job
// reporting the cancellation.
func TestRunSuiteMidFlightCancellation(t *testing.T) {
	// snark/Da is a multi-second check; cancellation must cut it short.
	jobs := []Job{
		{Impl: "snark", Test: "Da", Opts: Options{Model: memmodel.Relaxed}},
		{Impl: "snark", Test: "Da", Opts: Options{Model: memmodel.TSO}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	results := RunSuite(jobs, SuiteOptions{Parallelism: 2, Context: ctx})
	elapsed := time.Since(start)
	if elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v; solver stop predicate not honored", elapsed)
	}
	for i, r := range results {
		if r.Err == nil {
			// A job may legitimately finish before the cancel lands;
			// anything else must surface the cancellation.
			continue
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestRunSuiteResultCallback: OnResult fires once per job with the
// job's index, serialized.
func TestRunSuiteResultCallback(t *testing.T) {
	jobs := modelSweep("ms2", "T0")
	seen := make([]int, len(jobs))
	results := RunSuite(jobs, SuiteOptions{
		Parallelism: 4,
		OnResult: func(i int, r SuiteResult) {
			seen[i]++ // safe: calls are serialized by RunSuite
			if r.Job.Opts.Model != jobs[i].Opts.Model {
				t.Errorf("callback %d: job mismatch", i)
			}
		},
	})
	requireAllRan(t, results)
	for i, n := range seen {
		if n != 1 {
			t.Errorf("OnResult for job %d fired %d times", i, n)
		}
	}
}

// TestPortfolioCheckParity: a portfolio check returns the same verdict
// and observation set as the serial check, and the winner's solver
// stats are recorded.
func TestPortfolioCheckParity(t *testing.T) {
	base := Options{Model: memmodel.Relaxed}
	serial, err := Check("harris", "Sac", base)
	if err != nil {
		t.Fatal(err)
	}
	port := base
	port.Backend = BackendPortfolio
	port.Portfolio = 3
	raced, err := Check("harris", "Sac", port)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Pass != raced.Pass {
		t.Errorf("portfolio verdict %v, serial %v", raced.Pass, serial.Pass)
	}
	if !serial.Spec.Equal(raced.Spec) {
		t.Error("portfolio and serial observation sets differ")
	}
	if raced.Stats.CNFVars == 0 || raced.Stats.CNFClauses == 0 {
		t.Error("portfolio check lost CNF stats")
	}
	if raced.Stats.TotalTime <= 0 || raced.Stats.RefuteTime <= 0 {
		t.Errorf("portfolio timing not recorded: total %v refute %v",
			raced.Stats.TotalTime, raced.Stats.RefuteTime)
	}
}

// TestTotalTimeOnAllPaths: TotalTime must be recorded on a pass, on a
// counterexample, and on a sequential bug (the early-return paths).
func TestTotalTimeOnAllPaths(t *testing.T) {
	cases := []struct {
		impl, test string
		model      memmodel.Model
	}{
		{"ms2", "T0", memmodel.Relaxed},                         // pass
		{"msn-nofence", "T0", memmodel.PSO},                     // counterexample
		{"lazylist-bug", "Sac", memmodel.SequentialConsistency}, // serial runtime error
	}
	for _, c := range cases {
		res, err := Check(c.impl, c.test, Options{Model: c.model})
		if err != nil {
			t.Fatalf("%s/%s: %v", c.impl, c.test, err)
		}
		if res.Stats.TotalTime <= 0 {
			t.Errorf("%s/%s (pass=%v seqbug=%v): TotalTime = %v",
				c.impl, c.test, res.Pass, res.SeqBug, res.Stats.TotalTime)
		}
	}
}

// TestSpecCacheDisk: a second cache rooted at the same directory loads
// the mined set from disk instead of re-mining. Independent jobs only
// (Sweep off) — the per-job hit/miss counts are the subject here.
func TestSpecCacheDisk(t *testing.T) {
	dir := t.TempDir()
	jobs := modelSweep("ms2", "T0")

	first := RunSuite(jobs, SuiteOptions{Parallelism: 2, SpecCacheDir: dir, Sweep: SweepOff})
	requireAllRan(t, first)
	files, err := filepath.Glob(filepath.Join(dir, "*.obs"))
	if err != nil || len(files) != 1 {
		t.Fatalf("disk mirror: files = %v, err = %v", files, err)
	}

	// A fresh cache over the same dir must serve the set without
	// mining: every job reports a hit, none a miss.
	second := RunSuite(jobs, SuiteOptions{Parallelism: 2, SpecCacheDir: dir, Sweep: SweepOff})
	requireAllRan(t, second)
	hits, misses := 0, 0
	for _, r := range second {
		hits += r.Res.Stats.SpecCacheHits
		misses += r.Res.Stats.SpecCacheMisses
	}
	if misses != 0 || hits != len(jobs) {
		t.Errorf("second run: %d misses, %d hits; want 0 and %d", misses, hits, len(jobs))
	}
	for i := range jobs {
		if !first[i].Res.Spec.Equal(second[i].Res.Spec) {
			t.Errorf("job %d: disk round-trip changed the observation set", i)
		}
	}
}

// TestSpecCacheForeignKeyDiskFile: a cache file whose embedded key
// does not match the requested problem (renamed, copied between
// directories, or written by a different key derivation) is a miss and
// gets re-mined, never silently reused.
func TestSpecCacheForeignKeyDiskFile(t *testing.T) {
	dir := t.TempDir()
	jobs := modelSweep("ms2", "T0")[:1]
	requireAllRan(t, RunSuite(jobs, SuiteOptions{SpecCacheDir: dir}))
	files, _ := filepath.Glob(filepath.Join(dir, "*.obs"))
	if len(files) != 1 {
		t.Fatalf("files = %v", files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a file written for a different problem: same format,
	// wrong embedded key.
	lines := strings.SplitN(string(data), "\n", 3)
	if len(lines) != 3 || !strings.HasPrefix(lines[1], "key ") {
		t.Fatalf("unexpected cache file layout:\n%s", data)
	}
	lines[1] = "key " + strings.Repeat("0", 64)
	if err := os.WriteFile(files[0], []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	results := RunSuite(jobs, SuiteOptions{SpecCacheDir: dir})
	requireAllRan(t, results)
	if results[0].Res.Stats.SpecCacheMisses != 1 {
		t.Errorf("foreign-key file should be a miss; stats = %+v", results[0].Res.Stats)
	}
	// The re-mined set overwrote the foreign entry with the right key.
	data, err = os.ReadFile(files[0])
	if err != nil || strings.Contains(string(data), strings.Repeat("0", 64)) {
		t.Errorf("foreign entry not rewritten: %q, %v", data, err)
	}
}

// TestSpecCacheCorruptDiskFile: a damaged cache file is a miss, not an
// error — the set is re-mined and the file rewritten.
func TestSpecCacheCorruptDiskFile(t *testing.T) {
	dir := t.TempDir()
	jobs := modelSweep("ms2", "T0")[:1]
	requireAllRan(t, RunSuite(jobs, SuiteOptions{SpecCacheDir: dir}))
	files, _ := filepath.Glob(filepath.Join(dir, "*.obs"))
	if len(files) != 1 {
		t.Fatalf("files = %v", files)
	}
	if err := os.WriteFile(files[0], []byte("not an observation set\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	results := RunSuite(jobs, SuiteOptions{SpecCacheDir: dir})
	requireAllRan(t, results)
	if results[0].Res.Stats.SpecCacheMisses != 1 {
		t.Errorf("corrupt file should be a miss; stats = %+v", results[0].Res.Stats)
	}
	data, err := os.ReadFile(files[0])
	if err != nil || !strings.HasPrefix(string(data), "checkfence-obs") {
		t.Errorf("corrupt file not rewritten: %q, %v", data, err)
	}
}

// TestSpecCacheErrorNotCached: a mining failure must not poison the
// cache — the next request for the key mines again.
func TestSpecCacheErrorNotCached(t *testing.T) {
	cache := NewSpecCache("")
	boom := errors.New("boom")
	if _, _, _, err := cache.GetOrMine("k", func(*spec.Set, int) (*spec.Set, int, error) {
		return nil, 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if cache.Len() != 0 {
		t.Fatalf("failed mining left %d entries", cache.Len())
	}
	want := spec.NewSet()
	set, _, out, err := cache.GetOrMine("k", func(*spec.Set, int) (*spec.Set, int, error) {
		return want, 7, nil
	})
	if err != nil || out.Hit || set != want {
		t.Errorf("re-mine after failure: set=%v outcome=%+v err=%v", set, out, err)
	}
}

package core

// Profiling harness: a single heavy check, skipped unless
// CHECKFENCE_PROFILE is set. Run with -cpuprofile/-memprofile to
// inspect where a full check spends its time, e.g.
//
//	CHECKFENCE_PROFILE=1 go test ./internal/core -run TestProfileSnarkDa -cpuprofile cpu.out

import (
	"os"
	"testing"

	"checkfence/internal/memmodel"
)

func TestProfileSnarkDa(t *testing.T) {
	if os.Getenv("CHECKFENCE_PROFILE") == "" {
		t.Skip("profiling harness; set CHECKFENCE_PROFILE=1")
	}
	res, err := Check("snark", "Da", Options{Model: memmodel.Relaxed})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.Pass, res.Stats.PreprocessTime, res.Stats.RefuteTime, res.Stats.TotalTime)
}

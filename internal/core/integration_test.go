package core

import (
	"strings"
	"testing"

	"checkfence/internal/harness"
	"checkfence/internal/memmodel"
)

// TestSerialSelfInclusion: every implementation trivially satisfies
// its own specification under the Serial model (the inclusion check
// compares the same execution set the spec was mined from).
func TestSerialSelfInclusion(t *testing.T) {
	cases := []struct{ impl, test string }{
		{"ms2", "T0"},
		{"msn", "T0"},
		{"lazylist", "Sac"},
		{"harris", "Sac"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.impl+"/"+c.test, func(t *testing.T) {
			t.Parallel()
			res := check(t, c.impl, c.test, Options{Model: memmodel.Serial})
			if !res.Pass {
				t.Errorf("%s/%s under Serial must pass; cex:\n%v", c.impl, c.test, res.Cex)
			}
		})
	}
}

// TestSCPasses: the fenced implementations are correct under
// sequential consistency on small tests (paper step 1: "verify whether
// the algorithm functions correctly on a sequentially consistent
// memory model").
func TestSCPasses(t *testing.T) {
	cases := []struct{ impl, test string }{
		{"ms2", "T0"},
		{"ms2", "Ti2"},
		{"msn", "Ti2"},
		{"lazylist", "Sac"},
		{"lazylist", "Sar"},
		{"harris", "Sac"},
		{"harris", "Sar"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.impl+"/"+c.test, func(t *testing.T) {
			t.Parallel()
			res := check(t, c.impl, c.test, Options{Model: memmodel.SequentialConsistency})
			if !res.Pass {
				t.Errorf("%s/%s on SC must pass; cex:\n%v", c.impl, c.test, res.Cex)
			}
		})
	}
}

// TestRelaxedFencedPasses: with the fences of §4.2 in place, the
// implementations pass on Relaxed.
func TestRelaxedFencedPasses(t *testing.T) {
	cases := []struct{ impl, test string }{
		{"ms2", "T0"},
		{"msn", "T0"},
		{"lazylist", "Sac"},
		{"harris", "Sac"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.impl+"/"+c.test, func(t *testing.T) {
			t.Parallel()
			res := check(t, c.impl, c.test, Options{Model: memmodel.Relaxed})
			if !res.Pass {
				t.Errorf("%s/%s on Relaxed must pass; cex:\n%v", c.impl, c.test, res.Cex)
			}
		})
	}
}

// TestRelaxedUnfencedFails: without fences every implementation
// fails on the relaxed model (paper §4.2: "all five implementations
// require extra memory fences").
func TestRelaxedUnfencedFails(t *testing.T) {
	cases := []struct{ impl, test string }{
		{"ms2-nofence", "T0"},
		{"msn-nofence", "T0"},
		{"lazylist-nofence", "Sac"},
		{"harris-nofence", "Sac"},
		{"snark-nofence", "D0"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.impl+"/"+c.test, func(t *testing.T) {
			t.Parallel()
			res := check(t, c.impl, c.test, Options{Model: memmodel.Relaxed})
			if res.Pass {
				t.Errorf("%s/%s on Relaxed must fail", c.impl, c.test)
			}
		})
	}
}

// TestTSOMakesFencesAutomatic verifies the paper's §4.2 observation:
// "the implementations we studied required only load-load and
// store-store fences. On some architectures (such as Sun TSO ...)
// these fences are automatic and the algorithm therefore works
// without inserting any fences on these architectures."
func TestTSOMakesFencesAutomatic(t *testing.T) {
	cases := []struct{ impl, test string }{
		{"msn-nofence", "T0"},
		{"msn-nofence", "Ti2"},
		{"ms2-nofence", "T0"},
		{"lazylist-nofence", "Sac"},
		{"harris-nofence", "Sac"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.impl+"/"+c.test, func(t *testing.T) {
			t.Parallel()
			res := check(t, c.impl, c.test, Options{Model: memmodel.TSO})
			if !res.Pass {
				t.Errorf("%s/%s must pass on TSO (load-load and store-store order is automatic); cex:\n%v",
					c.impl, c.test, res.Cex)
			}
		})
	}
}

// TestPSOStillNeedsStoreStoreFences: PSO reorders stores, so the
// unfenced implementations that need a store-store fence between node
// initialization and linking fail there — and the fenced versions
// pass.
func TestPSOStillNeedsStoreStoreFences(t *testing.T) {
	res := check(t, "msn-nofence", "T0", Options{Model: memmodel.PSO})
	if res.Pass {
		t.Error("unfenced msn must fail on PSO (store-store reordering)")
	}
	res = check(t, "msn", "T0", Options{Model: memmodel.PSO})
	if !res.Pass {
		t.Errorf("fenced msn must pass on PSO; cex:\n%v", res.Cex)
	}
}

// TestSnarkBugOnD0: the snark deque is buggy as published; the first
// known bug shows up quickly on test D0 even under sequential
// consistency (paper §4.1).
func TestSnarkBugOnD0(t *testing.T) {
	res := check(t, "snark", "D0", Options{Model: memmodel.SequentialConsistency})
	if res.Pass {
		t.Fatal("snark/D0 on SC must fail (published algorithm is buggy)")
	}
	t.Logf("snark counterexample:\n%v", res.Cex)
}

// TestUninitializedLockDetected: a lazylist variant whose add() does
// not initialize the new node's lock must be reported as a sequential
// bug — the spin-loop assumption reads an undefined value, which must
// surface as an error rather than silently excluding the execution
// (regression test for the encoder's assume semantics; the
// interpreter-based enumeration caught this divergence).
func TestUninitializedLockDetected(t *testing.T) {
	base, err := harness.Get("lazylist")
	if err != nil {
		t.Fatal(err)
	}
	v := *base
	v.Name = "lazylist-nolockinit"
	// Drop the new node's lock initialization inside add() (the
	// sentinel initializations in init_set must stay).
	v.Source = strings.Replace(base.Source,
		"n->next = curr;\n                n->lock = free;",
		"n->next = curr;", 1)
	if v.Source == base.Source {
		t.Fatal("source surgery failed")
	}
	test, err := harness.GetTest(&v, "Sar")
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckImpl(&v, test, Options{Model: memmodel.SequentialConsistency})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Fatal("uninitialized lock must be detected")
	}
	if !res.SeqBug {
		t.Errorf("expected a sequential bug verdict, got %+v", res)
	}
}

// TestLazyListInitBug: the published lazylist pseudocode fails to
// initialize the 'marked' field of new nodes; CheckFence detects the
// use of the undefined value (paper §4.1, the not-previously-known
// bug).
func TestLazyListInitBug(t *testing.T) {
	res := check(t, "lazylist-bug", "Sac", Options{Model: memmodel.SequentialConsistency})
	if res.Pass {
		t.Fatal("lazylist-bug/Sac must fail")
	}
	if res.Cex == nil || !res.Cex.IsErr {
		t.Fatalf("expected an undefined-value runtime error, got:\n%v", res.Cex)
	}
	t.Logf("lazylist-bug counterexample:\n%v", res.Cex)
}

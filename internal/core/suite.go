package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"checkfence/internal/faultinject"
	"checkfence/internal/harness"
	"checkfence/internal/sat"
)

// Job is one check of a suite: an implementation, a test, and the
// per-check options (model, spec source, portfolio width, ...).
type Job struct {
	Impl string
	Test string
	// ImplRef and TestRef, when non-nil, supply the resolved
	// implementation and test structures directly — the path inline
	// programs submitted over the checkfenced wire format take. Impl
	// and Test then only label results; when the refs are nil the
	// names resolve through the harness registry.
	ImplRef *harness.Impl
	TestRef *harness.Test
	Opts    Options
}

// resolve produces the implementation and test structures the job
// checks: the supplied references when present, the registry lookup
// otherwise.
func (j Job) resolve() (*harness.Impl, *harness.Test, error) {
	impl := j.ImplRef
	if impl == nil {
		var err error
		if impl, err = harness.Get(j.Impl); err != nil {
			return nil, nil, err
		}
	}
	test := j.TestRef
	if test == nil {
		var err error
		if test, err = harness.GetTest(impl, j.Test); err != nil {
			return nil, nil, err
		}
	}
	return impl, test, nil
}

// SuiteResult pairs a job with its outcome. Exactly one of Res/Err is
// meaningful: Err is non-nil when the check failed to run (not when
// it found a counterexample — that is a successful check with
// Res.Pass == false).
type SuiteResult struct {
	Job Job
	Res *Result
	Err error
}

// SuiteOptions configures RunSuite.
type SuiteOptions struct {
	// Parallelism bounds the number of concurrently running checks;
	// <= 0 means GOMAXPROCS.
	Parallelism int
	// Context, when non-nil, cancels the suite: queued jobs are not
	// started and in-flight SAT solves stop at their next check
	// point, both reporting ctx.Err().
	Context context.Context
	// SpecCache shares mined observation sets across the suite's
	// jobs (and, if the caller reuses it, across suites). When nil, a
	// fresh cache is created per suite, rooted at SpecCacheDir.
	SpecCache *SpecCache
	// SpecCacheDir enables the on-disk observation-set mirror of the
	// implicitly created cache. Ignored when SpecCache is non-nil.
	SpecCacheDir string
	// OnResult, when non-nil, is invoked as each job finishes, with
	// the job's index. Calls are serialized but arrive in completion
	// order, not job order.
	OnResult func(index int, r SuiteResult)
	// Faults arms deterministic fault injection on every job that does
	// not set its own, and on the suite's spec cache (tests and chaos
	// runs only).
	Faults faultinject.Faults
	// Sweep controls model-sweep grouping: under SweepAuto (the
	// default), jobs identical in everything but Model are checked on
	// one shared selector-guarded encoding, solved per model under
	// assumptions (see sweep.go). SweepOff checks every job
	// independently. Individual jobs opt out with Options.Sweep.
	Sweep SweepMode
	// Gate, when non-nil, admission-controls the pool: every worker
	// acquires a slot before starting a unit of work (a single check
	// or a whole sweep group) and releases it afterwards. Several
	// concurrent RunSuite calls sharing one Gate — the checkfenced
	// daemon's batches — are thereby bounded by one global concurrency
	// limit instead of multiplying their pool sizes.
	Gate Gate
}

// Gate bounds concurrent work across independent RunSuite calls. An
// implementation must be safe for concurrent use.
type Gate interface {
	// Acquire blocks until a slot is free or the context is done,
	// returning ctx.Err() in the latter case.
	Acquire(ctx context.Context) error
	// Release frees a slot acquired by Acquire.
	Release()
}

// NewGate returns a Gate admitting n concurrent units (n <= 0 is
// treated as 1).
func NewGate(n int) Gate {
	if n <= 0 {
		n = 1
	}
	return make(chanGate, n)
}

type chanGate chan struct{}

func (g chanGate) Acquire(ctx context.Context) error {
	select {
	case g <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g chanGate) Release() { <-g }

// RunSuite checks all jobs on a bounded worker pool and returns their
// results with deterministic ordering: results[i] corresponds to
// jobs[i] regardless of completion order. Observation sets are mined
// at most once per (implementation, test, bounds, spec source) via
// the shared spec cache; per-check Stats report the cache traffic.
func RunSuite(jobs []Job, opts SuiteOptions) []SuiteResult {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	cache := opts.SpecCache
	if cache == nil {
		cache = NewSpecCache(opts.SpecCacheDir)
	}
	if opts.Faults != nil {
		cache.SetFaults(opts.Faults)
	}
	// Effective per-job options, with the suite's injections applied
	// up front: sweep grouping must key on what will actually run.
	eff := make([]Options, len(jobs))
	for i, job := range jobs {
		jopts := job.Opts
		if jopts.SpecCache == nil {
			jopts.SpecCache = cache
		}
		if jopts.Cancel == nil {
			jopts.Cancel = ctx.Done()
		}
		if jopts.Faults == nil {
			jopts.Faults = opts.Faults
		}
		eff[i] = jopts
	}
	units := planUnits(jobs, eff, opts.Sweep != SweepOff)

	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}

	results := make([]SuiteResult, len(jobs))
	var next atomic.Int64
	next.Store(-1)
	var cbMu sync.Mutex
	emit := func(i int, r SuiteResult) {
		results[i] = r
		if opts.OnResult != nil {
			cbMu.Lock()
			opts.OnResult(i, r)
			cbMu.Unlock()
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				u := int(next.Add(1))
				if u >= len(units) {
					return
				}
				unit := units[u]
				if opts.Gate != nil {
					if err := opts.Gate.Acquire(ctx); err != nil {
						emitUnitErr(unit, jobs, err, emit)
						continue
					}
				}
				if unit.group != nil {
					runSweepGroup(unit.group, jobs, ctx, emit)
				} else {
					i := unit.single
					job := jobs[i]
					r := SuiteResult{Job: job}
					if err := ctx.Err(); err != nil {
						r.Err = err
					} else {
						r.Res, r.Err = safeCheck(job, eff[i])
						if r.Err != nil && ctx.Err() != nil {
							// An interrupted solve surfaces as a solver
							// error; report the cancellation itself.
							r.Err = ctx.Err()
						}
					}
					emit(i, r)
				}
				if opts.Gate != nil {
					opts.Gate.Release()
				}
			}
		}()
	}
	wg.Wait()
	return results
}

// runSweepGroup checks one sweep group and emits a SuiteResult for
// every member job. Duplicate jobs of the same model share the check:
// the second and later consumers receive a shallow copy of the result.
func runSweepGroup(g *sweepGroup, jobs []Job, ctx context.Context,
	emit func(int, SuiteResult)) {
	if err := ctx.Err(); err != nil {
		for _, idxs := range g.jobs {
			for _, i := range idxs {
				emit(i, SuiteResult{Job: jobs[i], Err: err})
			}
		}
		return
	}
	outs := g.run()
	for _, m := range g.models {
		o := outs[m]
		for k, i := range g.jobs[m] {
			r := SuiteResult{Job: jobs[i], Err: o.err}
			if o.res != nil {
				if k == 0 {
					r.Res = o.res
				} else {
					cp := *o.res
					r.Res = &cp
				}
			}
			if r.Err != nil && ctx.Err() != nil {
				r.Err = ctx.Err()
			}
			emit(i, r)
		}
	}
}

// emitUnitErr reports err for every job of a unit (used when the
// suite's admission gate fails, i.e. the context was cancelled while
// waiting for a slot).
func emitUnitErr(unit suiteUnit, jobs []Job, err error, emit func(int, SuiteResult)) {
	if unit.group != nil {
		for _, idxs := range unit.group.jobs {
			for _, i := range idxs {
				emit(i, SuiteResult{Job: jobs[i], Err: err})
			}
		}
		return
	}
	emit(unit.single, SuiteResult{Job: jobs[unit.single], Err: err})
}

// safeCheck isolates one check: a panic anywhere in its pipeline
// (encoder, miner, a serial solve outside the workers' own recovery)
// becomes that check's error — carrying the recovered value and stack
// as a *faultinject.RecoveredPanic — instead of killing the suite.
func safeCheck(job Job, opts Options) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res = nil
			err = fmt.Errorf("core: check %s/%s panicked: %w",
				job.Impl, job.Test, sat.RecoverAsError(p))
		}
	}()
	impl, test, err := job.resolve()
	if err != nil {
		return nil, err
	}
	return CheckImpl(impl, test, opts)
}

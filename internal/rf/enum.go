package rf

import (
	"checkfence/internal/lsl"
	"checkfence/internal/memmodel"
	"checkfence/internal/spec"
	"checkfence/internal/trace"
)

// EnumStats reports enumeration work for the Stats counters.
type EnumStats struct {
	Steps      int // candidate reads-from extensions attempted
	Execs      int // complete candidate assignments reaching a leaf
	Consistent int // distinct consistent executions found
	Splits     int // case splits spent across all consistency decisions
}

// Add folds another enumeration's counters in.
func (s *EnumStats) Add(o EnumStats) {
	s.Steps += o.Steps
	s.Execs += o.Execs
	s.Consistent += o.Consistent
	s.Splits += o.Splits
}

// loadVal is the value a load yields under assignment src.
func (p *Program) loadVal(src int) lsl.Value {
	if src < 0 {
		return lsl.Undef()
	}
	return p.Events[src].Val
}

// observation resolves the entry bindings under a complete reads-from
// assignment (loadSrc maps a load's event index to its source).
func (p *Program) observation(bindings []binding, loadSrc map[int]int) spec.Observation {
	obs := make(spec.Observation, len(bindings))
	for i, b := range bindings {
		if b.src >= 0 {
			obs[i] = p.loadVal(loadSrc[b.src])
		} else {
			obs[i] = b.val
		}
	}
	return obs
}

// forEach enumerates every consistent execution of p under model:
// depth-first over the loads, each assigned a source (the initial
// memory, then every same-location store in event order), with the
// consistency engine pruning incrementally — a partial assignment's
// constraints are independent of the unassigned loads, so any
// inconsistency refutes the whole subtree. visit receives the
// witness checker (fully resolved and acyclic), the class table for
// linearization, and the assignment; returning true stops the
// enumeration early.
func (p *Program) forEach(model memmodel.Model, b Budget,
	visit func(w *checker, classEvents [][]int, loadSrc map[int]int) (bool, error)) (EnumStats, error) {

	b = b.withDefaults()
	var st EnumStats
	base, classEvents, ok := p.newChecker(model)
	if !ok {
		return st, nil
	}
	loadSrc := map[int]int{}

	var rec func(i int, c *checker) (bool, error)
	rec = func(i int, c *checker) (bool, error) {
		if i == len(p.Loads) {
			st.Execs++
			leaf := c.clone()
			w, err := leaf.decide(&st.Splits, b.MaxSplits)
			if err != nil {
				return false, err
			}
			if w == nil {
				return false, nil
			}
			st.Consistent++
			return visit(w, classEvents, loadSrc)
		}
		l := p.Loads[i]
		cands := append([]int{-1}, p.stores[p.Events[l].Loc]...)
		for _, src := range cands {
			st.Steps++
			if st.Steps > b.MaxSteps {
				return false, ErrBudget
			}
			cc := c.clone()
			if !cc.addLoad(p, model, l, src) || !cc.saturate() {
				continue
			}
			loadSrc[l] = src
			stop, err := rec(i+1, cc)
			if stop || err != nil {
				return stop, err
			}
		}
		delete(loadSrc, l)
		return false, nil
	}
	_, err := rec(0, base)
	return st, err
}

// Observations enumerates the complete observation set of p under
// model — the rf backend's replacement for SAT-based mining (Serial)
// and for the blocking-clause observation sweep (weak models).
func (p *Program) Observations(model memmodel.Model, entries []spec.Entry, b Budget) (*spec.Set, EnumStats, error) {
	bindings, err := p.resolveEntries(entries)
	if err != nil {
		return nil, EnumStats{}, err
	}
	set := spec.NewSet()
	st, err := p.forEach(model, b, func(_ *checker, _ [][]int, loadSrc map[int]int) (bool, error) {
		set.Add(p.observation(bindings, loadSrc))
		return false, nil
	})
	if err != nil {
		return nil, st, err
	}
	return set, st, nil
}

// CheckInclusion searches for a consistent execution of p under model
// whose observation lies outside set, returning its decoded trace (nil
// when every execution's observation is included — the check passes).
// Fragment programs cannot raise runtime errors, so the SAT backend's
// error phase is vacuous here; verdicts still agree because the
// encoder's error conditions are all gated on constructs the scan
// rejects.
func (p *Program) CheckInclusion(model memmodel.Model, entries []spec.Entry, set *spec.Set,
	names map[int64]string, b Budget) (*trace.Trace, EnumStats, error) {

	bindings, err := p.resolveEntries(entries)
	if err != nil {
		return nil, EnumStats{}, err
	}
	var cex *trace.Trace
	st, err := p.forEach(model, b, func(w *checker, classEvents [][]int, loadSrc map[int]int) (bool, error) {
		obs := p.observation(bindings, loadSrc)
		if set.Has(obs) {
			return false, nil
		}
		cex = p.buildTrace(model, w.linearize(classEvents), loadSrc, obs, entries, names)
		return true, nil
	})
	if err != nil {
		return nil, st, err
	}
	return cex, st, nil
}

// buildTrace renders a witness execution in the decoded-counterexample
// format shared with the SAT backend, so downstream validation
// (internal/validate) and reporting apply unchanged.
func (p *Program) buildTrace(model memmodel.Model, order []int, loadSrc map[int]int,
	obs spec.Observation, entries []spec.Entry, names map[int64]string) *trace.Trace {

	t := &trace.Trace{
		Model:       model,
		Observation: obs,
		Entries:     entries,
		Havocs:      make([][]int64, len(p.ThreadNames)),
	}
	for pos, idx := range order {
		ev := &p.Events[idx]
		val := ev.Val
		if ev.IsLoad {
			val = p.loadVal(loadSrc[idx])
		}
		tname := "init"
		if ev.Thread > 0 && ev.Thread < len(p.ThreadNames) {
			tname = p.ThreadNames[ev.Thread]
		}
		t.Events = append(t.Events, trace.Event{
			MemOrder: pos, Thread: ev.Thread, ThreadName: tname,
			ProgIdx: ev.ProgIdx, OpID: ev.OpID, Group: ev.Group,
			IsLoad: ev.IsLoad, Addr: ev.Addr,
			AddrName: trace.RenderAddr(ev.Addr, names), Val: val, Desc: ev.Desc,
		})
	}
	for _, f := range p.Fences {
		t.Fences = append(t.Fences, trace.Fence{Thread: f.Thread, ProgIdx: f.ProgIdx, Kind: f.Kind})
	}
	return t
}

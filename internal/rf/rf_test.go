package rf

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"checkfence/internal/encode"
	"checkfence/internal/lsl"
	"checkfence/internal/memmodel"
	"checkfence/internal/spec"
)

func c(dst string, v lsl.Value) lsl.Stmt { return &lsl.ConstStmt{Dst: lsl.Reg(dst), Val: v} }
func st(addr, src string) lsl.Stmt       { return &lsl.StoreStmt{Addr: lsl.Reg(addr), Src: lsl.Reg(src)} }
func ld(dst, addr string) lsl.Stmt       { return &lsl.LoadStmt{Dst: lsl.Reg(dst), Addr: lsl.Reg(addr)} }

func mkThreads(bodies ...[]lsl.Stmt) []encode.Thread {
	out := make([]encode.Thread, len(bodies))
	for i, b := range bodies {
		out[i] = encode.Thread{Name: fmt.Sprintf("t%d", i), Segments: [][]lsl.Stmt{b}, OpIDs: []int{0}}
	}
	return out
}

func TestScanRejects(t *testing.T) {
	cases := map[string][]lsl.Stmt{
		"arithmetic": {c("a", lsl.Int(1)), c("b", lsl.Int(2)),
			&lsl.OpStmt{Dst: "s", Op: lsl.OpAdd, Args: []lsl.Reg{"a", "b"}}},
		"loaded-address": {c("x", lsl.Ptr(0)), ld("p", "x"), ld("v", "p")},
		"loaded-store-value": {c("x", lsl.Ptr(0)), c("y", lsl.Ptr(1)),
			ld("v", "x"), st("y", "v")},
		"havoc":  {&lsl.HavocStmt{Dst: "h", Bits: 1}},
		"assert": {c("one", lsl.Int(1)), &lsl.AssertStmt{Cond: "one"}},
	}
	for name, body := range cases {
		if _, err := Scan(mkThreads(nil, body)); !errors.Is(err, ErrNotApplicable) {
			t.Errorf("%s: Scan error = %v, want ErrNotApplicable", name, err)
		}
	}
	// The fragment itself is accepted.
	ok := []lsl.Stmt{c("x", lsl.Ptr(0)), c("one", lsl.Int(1)), st("x", "one"),
		&lsl.OpStmt{Dst: "cp", Op: lsl.OpIdent, Args: []lsl.Reg{"one"}}, ld("r", "x"),
		&lsl.FenceStmt{Kind: lsl.FenceStoreLoad}}
	p, err := Scan(mkThreads(nil, ok))
	if err != nil {
		t.Fatalf("fragment rejected: %v", err)
	}
	if p.NumEvents() != 2 || len(p.Fences) != 1 || p.Candidates() != 2 {
		t.Fatalf("scan shape: events=%d fences=%d candidates=%d", p.NumEvents(), len(p.Fences), p.Candidates())
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// Four same-address stores and loads give 5^4 candidates; a 10-step
	// budget must trip.
	body1 := []lsl.Stmt{c("x", lsl.Ptr(0))}
	body2 := []lsl.Stmt{c("x", lsl.Ptr(0))}
	for i := 0; i < 4; i++ {
		body1 = append(body1, c(fmt.Sprintf("v%d", i), lsl.Int(int64(i))), st("x", fmt.Sprintf("v%d", i)))
		body2 = append(body2, ld(fmt.Sprintf("r%d", i), "x"))
	}
	p, err := Scan(mkThreads(nil, body1, body2))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = p.Observations(memmodel.SequentialConsistency, nil, Budget{MaxSteps: 10})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("Observations error = %v, want ErrBudget", err)
	}
}

// TestAtomicContraction checks the class-contraction path: message
// passing is observable on Relaxed, but wrapping each side in an
// atomic block restores the forbidden verdict.
func TestAtomicContraction(t *testing.T) {
	mp := func(atomic bool) []encode.Thread {
		w := []lsl.Stmt{st("x", "one"), st("y", "one")}
		r := []lsl.Stmt{ld("r1", "y"), ld("r2", "x")}
		if atomic {
			w = []lsl.Stmt{&lsl.AtomicStmt{Body: w}}
			r = []lsl.Stmt{&lsl.AtomicStmt{Body: r}}
		}
		pre := func(body []lsl.Stmt) []lsl.Stmt {
			return append([]lsl.Stmt{c("x", lsl.Ptr(0)), c("y", lsl.Ptr(1)), c("one", lsl.Int(1))}, body...)
		}
		init := []lsl.Stmt{c("x", lsl.Ptr(0)), c("y", lsl.Ptr(1)), c("z", lsl.Int(0)),
			st("x", "z"), st("y", "z")}
		return mkThreads(init, pre(w), pre(r))
	}
	entries := []spec.Entry{{Label: "r1", Thread: 2, Reg: "r1"}, {Label: "r2", Thread: 2, Reg: "r2"}}
	want := spec.Observation{lsl.Int(1), lsl.Int(0)}
	for _, tc := range []struct {
		atomic bool
		want   bool
	}{{false, true}, {true, false}} {
		p, err := Scan(mp(tc.atomic))
		if err != nil {
			t.Fatal(err)
		}
		set, _, err := p.Observations(memmodel.Relaxed, entries, Budget{})
		if err != nil {
			t.Fatal(err)
		}
		if got := set.Has(want); got != tc.want {
			t.Errorf("mp atomic=%v on relaxed: observable=%v, want %v", tc.atomic, got, tc.want)
		}
	}
}

// miniEvent is one access of the brute-force oracle's program view.
type miniEvent struct {
	isLoad bool
	addr   int64
	val    int64 // stores
	obs    int   // loads: observation slot
}

// oracleSet enumerates every interleaving of the threads' events —
// instruction-granular for SequentialConsistency, whole-thread-atomic
// for Serial — over a concrete memory, which is exactly those models'
// semantics. Shares nothing with the engine.
func oracleSet(threads [][]miniEvent, nObs int, wholeThread bool) *spec.Set {
	set := spec.NewSet()
	pos := make([]int, len(threads))
	mem := map[int64]lsl.Value{}
	obs := make(spec.Observation, nObs)
	for i := range obs {
		obs[i] = lsl.Undef()
	}
	var step func()
	run := func(t int, n int, cont func()) {
		saveMem := map[int64]lsl.Value{}
		for k, v := range mem {
			saveMem[k] = v
		}
		saveObs := append(spec.Observation(nil), obs...)
		savePos := pos[t]
		for i := 0; i < n; i++ {
			ev := threads[t][pos[t]]
			if ev.isLoad {
				v, ok := mem[ev.addr]
				if !ok {
					v = lsl.Undef()
				}
				obs[ev.obs] = v
			} else {
				mem[ev.addr] = lsl.Int(ev.val)
			}
			pos[t]++
		}
		cont()
		pos[t] = savePos
		mem = saveMem
		copy(obs, saveObs)
	}
	step = func() {
		done := true
		for t := range threads {
			if pos[t] < len(threads[t]) {
				done = false
				n := 1
				if wholeThread {
					if pos[t] != 0 {
						continue // whole threads run from the start only
					}
					n = len(threads[t])
				}
				run(t, n, step)
			}
		}
		if done {
			set.Add(append(spec.Observation(nil), obs...))
		}
	}
	step()
	return set
}

// TestOracleDifferential pits the engine's SequentialConsistency and
// Serial enumerations against the brute-force interleaving oracle on
// random straight-line programs.
func TestOracleDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		nThreads := 1 + rng.Intn(3)
		var minis [][]miniEvent
		var bodies [][]lsl.Stmt
		var entries []spec.Entry
		nextVal := int64(1)
		bodies = append(bodies, nil) // empty init pseudo-thread
		for ti := 1; ti <= nThreads; ti++ {
			body := []lsl.Stmt{c("x", lsl.Ptr(0)), c("y", lsl.Ptr(1))}
			var mini []miniEvent
			addrReg := [2]string{"x", "y"}
			nOps := 1 + rng.Intn(4)
			for oi := 0; oi < nOps; oi++ {
				addr := int64(rng.Intn(2))
				if rng.Intn(2) == 0 {
					vreg := fmt.Sprintf("v%d", oi)
					body = append(body, c(vreg, lsl.Int(nextVal)), st(addrReg[addr], vreg))
					mini = append(mini, miniEvent{addr: addr, val: nextVal})
					nextVal++
				} else {
					dst := fmt.Sprintf("r%d", oi)
					body = append(body, ld(dst, addrReg[addr]))
					mini = append(mini, miniEvent{isLoad: true, addr: addr, obs: len(entries)})
					entries = append(entries, spec.Entry{Label: dst, Thread: ti, Reg: lsl.Reg(dst)})
				}
			}
			bodies = append(bodies, body)
			minis = append(minis, mini)
		}
		p, err := Scan(mkThreads(bodies...))
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct {
			model memmodel.Model
			whole bool
		}{{memmodel.SequentialConsistency, false}, {memmodel.Serial, true}} {
			got, _, err := p.Observations(tc.model, entries, Budget{})
			if err != nil {
				t.Fatalf("iter %d %s: %v", iter, tc.model, err)
			}
			want := oracleSet(minis, len(entries), tc.whole)
			if !got.Equal(want) {
				t.Fatalf("iter %d: %s set diverges from oracle\nrf:     %v\noracle: %v",
					iter, tc.model, got.All(), want.All())
			}
		}
	}
}

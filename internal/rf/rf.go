// Package rf is the polynomial reads-from fast-path backend: a
// saturation-based consistency engine for candidate executions of
// litmus-scale programs that decides, without SAT, whether a given
// reads-from assignment can be extended to a memory order satisfying
// the model's axioms (cf. "Optimal Reads-From Consistency Checking
// for C11-Style Memory Models", arXiv 2304.03714, and the
// tractability map of "How Hard is Weak-Memory Testing?",
// arXiv 2311.04302).
//
// The engine operates on the applicable fragment identified by Scan:
// straight-line threads of constant assignments, loads and stores
// with concrete addresses, register copies, and fences — exactly the
// shape of classic litmus tests and of the differential fuzzer's
// program space. For one candidate execution (a source store, or the
// initial memory, per load) it derives
//
//   - must-edges: the model's unconditional program-order pairs
//     (memmodel.KeepsProgramOrder), the conditional same-address
//     axiom (memmodel.OrdersSameAddrStore), initialization-first,
//     fence-ordered pairs, and the reads-from edges themselves; and
//   - from-read disjunctions: for a load l reading store s and any
//     other same-address store s2, (s2 <M s) ∨ (l <M s2) — the
//     coherence/maximality constraint of the value axiom.
//
// Saturation maintains the transitive closure incrementally, resolves
// every disjunction one of whose branches would close a cycle, and
// reports inconsistency when a must-edge itself closes one. Because a
// resolved, acyclic edge set admits a linear extension — which is
// then a witness execution satisfying every axiom — the procedure is
// sound; completeness over the residual disjunctions is restored by
// case-splitting, which the per-model tractability results bound
// tightly in practice (litmus-scale instances resolve with no or very
// few splits).
//
// Atomic blocks and, under the Serial model, whole operations are
// contracted into super-node classes before closure, exactly
// mirroring the encoder's order-variable merge classes: the
// atomicity/seriality axioms force every member of such a class to
// relate identically to any outside access, so class-level ordering
// decides event-level ordering and the contiguity axioms hold by
// construction when classes expand in program order.
package rf

import (
	"errors"
	"fmt"

	"checkfence/internal/lsl"
	"checkfence/internal/memmodel"
)

// ErrNotApplicable marks a program outside the fast-path fragment;
// the caller must fall back to the SAT backend.
var ErrNotApplicable = errors.New("rf: program outside the reads-from fragment")

// ErrBudget marks an exhausted enumeration or case-split budget; the
// caller must fall back to the SAT backend (rf degrades to SAT, never
// the reverse).
var ErrBudget = errors.New("rf: budget exhausted")

// Event is one memory access of the scanned program. Events are
// created thread by thread in program order, so within one thread the
// index order is the program order.
type Event struct {
	Idx     int
	Thread  int // 0 is the initialization pseudo-thread
	ProgIdx int // program-order position (loads, stores, and fences share the counter)
	IsLoad  bool
	OpID    int // operation invocation id (-1 for none)
	Group   int // atomic block id (-1 for none)

	Addr lsl.Value // concrete pointer
	Loc  lsl.Loc   // Addr as a map key
	Val  lsl.Value // store: concrete value written; load: per-execution
	Desc string    // source form, mirroring encode.Access.Desc
}

// FenceEv is one fence occurrence.
type FenceEv struct {
	Thread  int
	ProgIdx int
	Kind    lsl.FenceKind
}

// Budget bounds the enumeration. Exhaustion returns ErrBudget so the
// router can degrade to SAT.
type Budget struct {
	// MaxSteps caps the total DFS work: every candidate reads-from
	// extension attempted counts one step.
	MaxSteps int
	// MaxSplits caps the case splits spent across all consistency
	// decisions of one enumeration.
	MaxSplits int
}

// DefaultBudget is generous for the litmus-scale fragment (a few
// dozen events): typical instances finish in well under a thousand
// steps.
func DefaultBudget() Budget {
	return Budget{MaxSteps: 1 << 17, MaxSplits: 1 << 14}
}

func (b Budget) withDefaults() Budget {
	d := DefaultBudget()
	if b.MaxSteps <= 0 {
		b.MaxSteps = d.MaxSteps
	}
	if b.MaxSplits <= 0 {
		b.MaxSplits = d.MaxSplits
	}
	return b
}

// bitset is a fixed-capacity bit vector over class indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }
func (b bitset) set(i int)      { b[i>>6] |= 1 << uint(i&63) }

func (b bitset) orWith(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// edge is a class-level ordering constraint u <M v.
type edge struct{ u, v int }

// disjunction is an unresolved from-read constraint: a ∨ b.
type disjunction struct{ a, b edge }

// checker decides consistency of one (partial) candidate execution:
// a transitively closed must-edge relation over the contraction
// classes plus the still-unresolved from-read disjunctions.
type checker struct {
	n     int      // number of classes
	rep   []int    // event index -> class index
	reach []bitset // reach[u].get(v): u precedes v transitively
	disj  []disjunction
}

func (c *checker) clone() *checker {
	cc := &checker{n: c.n, rep: c.rep} // rep is immutable, share it
	cc.reach = make([]bitset, c.n)
	for i, r := range c.reach {
		cc.reach[i] = append(bitset(nil), r...)
	}
	cc.disj = append([]disjunction(nil), c.disj...)
	return cc
}

// addEdge inserts the class-level edge u <M v and maintains the
// transitive closure. It reports false when the edge closes a cycle
// (the execution is inconsistent).
func (c *checker) addEdge(u, v int) bool {
	if u == v {
		return false
	}
	if c.reach[u].get(v) {
		return true
	}
	if c.reach[v].get(u) {
		return false
	}
	for a := 0; a < c.n; a++ {
		if a != u && !c.reach[a].get(u) {
			continue
		}
		c.reach[a].set(v)
		c.reach[a].orWith(c.reach[v])
	}
	return true
}

// must asserts the event-level constraint x <M y. Intra-class pairs
// are decided by program order (class members expand in program
// order, and events of one thread are created in program order).
func (c *checker) must(x, y int) bool {
	cx, cy := c.rep[x], c.rep[y]
	if cx == cy {
		return x < y
	}
	return c.addEdge(cx, cy)
}

// or asserts the event-level disjunction (x1 <M y1) ∨ (x2 <M y2).
// Intra-class disjuncts are decided by program order immediately;
// genuinely binary constraints are queued for saturation.
func (c *checker) or(x1, y1, x2, y2 int) bool {
	c1, d1 := c.rep[x1], c.rep[y1]
	c2, d2 := c.rep[x2], c.rep[y2]
	aIntra, bIntra := c1 == d1, c2 == d2
	if aIntra && x1 < y1 || bIntra && x2 < y2 {
		return true // a disjunct holds by program order
	}
	switch {
	case aIntra && bIntra:
		return false // both refuted by program order
	case aIntra:
		return c.addEdge(c2, d2)
	case bIntra:
		return c.addEdge(c1, d1)
	}
	c.disj = append(c.disj, disjunction{edge{c1, d1}, edge{c2, d2}})
	return true
}

// saturate resolves disjunctions against the current closure to a
// fixpoint: a disjunct already implied discharges its constraint, a
// disjunct that would close a cycle forces the other branch. Reports
// false when a constraint has both branches refuted or a forced edge
// closes a cycle.
func (c *checker) saturate() bool {
	for changed := true; changed; {
		changed = false
		kept := c.disj[:0]
		for _, d := range c.disj {
			switch {
			case c.reach[d.a.u].get(d.a.v) || c.reach[d.b.u].get(d.b.v):
				// Satisfied; drop.
			case c.reach[d.a.v].get(d.a.u):
				// a refuted: b must hold.
				if c.reach[d.b.v].get(d.b.u) || !c.addEdge(d.b.u, d.b.v) {
					return false
				}
				changed = true
			case c.reach[d.b.v].get(d.b.u):
				if !c.addEdge(d.a.u, d.a.v) {
					return false
				}
				changed = true
			default:
				kept = append(kept, d)
			}
		}
		c.disj = kept
	}
	return true
}

// decide completes the consistency decision: after saturation, any
// residual disjunction is case-split (each branch asserted in a
// clone). It returns a fully resolved, acyclic checker when the
// execution is consistent, nil when it is not, and ErrBudget when the
// split budget runs out.
func (c *checker) decide(splits *int, maxSplits int) (*checker, error) {
	if !c.saturate() {
		return nil, nil
	}
	if len(c.disj) == 0 {
		return c, nil
	}
	d := c.disj[0]
	rest := c.disj[1:]
	for _, e := range [2]edge{d.a, d.b} {
		*splits++
		if *splits > maxSplits {
			return nil, ErrBudget
		}
		cc := c.clone()
		cc.disj = append(cc.disj[:0], rest...)
		if cc.addEdge(e.u, e.v) {
			w, err := cc.decide(splits, maxSplits)
			if w != nil || err != nil {
				return w, err
			}
		}
	}
	return nil, nil
}

// linearize produces a deterministic linear extension of the closure:
// Kahn's algorithm picking the lowest-indexed ready class, classes
// expanded in program order. The result lists event indices in the
// witness memory order.
func (c *checker) linearize(classEvents [][]int) []int {
	done := make([]bool, c.n)
	order := make([]int, 0, len(c.rep))
	for placed := 0; placed < c.n; placed++ {
		pick := -1
		for u := 0; u < c.n && pick < 0; u++ {
			if done[u] {
				continue
			}
			ready := true
			for v := 0; v < c.n; v++ {
				if !done[v] && v != u && c.reach[v].get(u) {
					ready = false
					break
				}
			}
			if ready {
				pick = u
			}
		}
		if pick < 0 {
			// Unreachable on an acyclic closure; fail loudly in tests.
			panic("rf: cyclic closure in linearize")
		}
		done[pick] = true
		order = append(order, classEvents[pick]...)
	}
	return order
}

// newChecker builds the contraction classes and the model's base
// must-edges (everything independent of the reads-from choice). The
// returned classEvents lists each class's member events in program
// order. ok is false when the base constraints are already
// inconsistent (impossible for well-formed programs, handled for
// robustness).
func (p *Program) newChecker(model memmodel.Model) (c *checker, classEvents [][]int, ok bool) {
	n := len(p.Events)

	// Union events into contraction classes: atomic blocks always,
	// whole operations under Serial — the encoder's merge classes.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		parent[rb] = ra
	}
	firstGroup := map[int]int{}
	firstOp := map[[2]int]int{}
	for i, ev := range p.Events {
		if ev.Group >= 0 {
			if f, seen := firstGroup[ev.Group]; seen {
				union(f, i)
			} else {
				firstGroup[ev.Group] = i
			}
		}
		if model == memmodel.Serial && ev.Thread != 0 && ev.OpID >= 0 {
			k := [2]int{ev.Thread, ev.OpID}
			if f, seen := firstOp[k]; seen {
				union(f, i)
			} else {
				firstOp[k] = i
			}
		}
	}
	rep := make([]int, n)
	classIdx := map[int]int{}
	for i := range rep {
		r := find(i)
		ci, seen := classIdx[r]
		if !seen {
			ci = len(classEvents)
			classIdx[r] = ci
			classEvents = append(classEvents, nil)
		}
		rep[i] = ci
		classEvents[ci] = append(classEvents[ci], i)
	}

	c = &checker{n: len(classEvents), rep: rep}
	c.reach = make([]bitset, c.n)
	for i := range c.reach {
		c.reach[i] = newBitset(c.n)
	}

	for i := range p.Events {
		a := &p.Events[i]
		for j := range p.Events {
			if i == j {
				continue
			}
			b := &p.Events[j]
			if a.Thread == 0 && b.Thread != 0 {
				if !c.must(i, j) {
					return nil, nil, false
				}
				continue
			}
			if a.Thread != b.Thread || a.ProgIdx >= b.ProgIdx {
				continue
			}
			required := a.Thread == 0 ||
				(a.Group >= 0 && a.Group == b.Group) ||
				model.KeepsProgramOrder(a.IsLoad, b.IsLoad)
			if !required && !b.IsLoad && a.Loc == b.Loc &&
				model.OrdersSameAddrStore(a.IsLoad) {
				// Conditional same-address axiom with concrete addresses.
				required = true
			}
			if required && !c.must(i, j) {
				return nil, nil, false
			}
		}
	}

	// Fence axioms (the encoder asserts them on the weak models; the
	// strong models' program order already covers every fenced pair).
	switch model {
	case memmodel.TSO, memmodel.PSO, memmodel.Relaxed:
		for _, f := range p.Fences {
			for i := range p.Events {
				a := &p.Events[i]
				if a.Thread != f.Thread || a.ProgIdx >= f.ProgIdx || !f.Kind.OrdersBefore(a.IsLoad) {
					continue
				}
				for j := range p.Events {
					b := &p.Events[j]
					if b.Thread != f.Thread || b.ProgIdx <= f.ProgIdx || !f.Kind.OrdersAfter(b.IsLoad) {
						continue
					}
					if !c.must(i, j) {
						return nil, nil, false
					}
				}
			}
		}
	}
	return c, classEvents, true
}

// fwdVisible mirrors the encoder's store-forwarding clause: on models
// with a store buffer, a program-order-earlier store of the same
// thread is visible to the load regardless of the global order.
func fwdVisible(model memmodel.Model, s, l *Event) bool {
	return model.Forwards() && s.Thread == l.Thread && s.ProgIdx < l.ProgIdx
}

// addLoad asserts the value-axiom constraints of load l reading from
// source src (an event index, or -1 for the initial memory): the
// reads-from edge, and per other same-address store the
// coherence/maximality constraint (s2 <M src) ∨ (l <M s2), with
// forwarding-visible stores forcing the first branch. Reports false
// when the choice is already inconsistent.
func (c *checker) addLoad(p *Program, model memmodel.Model, l, src int) bool {
	le := &p.Events[l]
	if src >= 0 {
		se := &p.Events[src]
		if !fwdVisible(model, se, le) && !c.must(src, l) {
			return false
		}
	}
	for s2 := range p.Events {
		e2 := &p.Events[s2]
		if e2.IsLoad || s2 == l || s2 == src || e2.Loc != le.Loc {
			continue
		}
		if src < 0 {
			// Reading initial memory: no store may be visible.
			if fwdVisible(model, e2, le) {
				return false
			}
			if !c.must(l, s2) {
				return false
			}
			continue
		}
		if fwdVisible(model, e2, le) {
			// s2 is unconditionally visible, so it must precede src.
			if !c.must(s2, src) {
				return false
			}
			continue
		}
		if !c.or(s2, src, l, s2) {
			return false
		}
	}
	return true
}

// internal sanity: an Event's Loc must match its Addr.
func (ev *Event) checkLoc() error {
	if ev.Addr.Kind != lsl.KindPtr {
		return fmt.Errorf("rf: event %d has non-pointer address %v", ev.Idx, ev.Addr)
	}
	if lsl.LocOf(ev.Addr) != ev.Loc {
		return fmt.Errorf("rf: event %d location mismatch", ev.Idx)
	}
	return nil
}

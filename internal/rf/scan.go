package rf

import (
	"fmt"

	"checkfence/internal/encode"
	"checkfence/internal/lsl"
	"checkfence/internal/spec"
)

// binding is the scanned value of a register: either the result of a
// load event (src >= 0) or a concrete value (src < 0).
type binding struct {
	src int
	val lsl.Value
}

// Program is a scanned program inside the reads-from fragment: every
// access has a concrete address, every stored value is concrete, and
// all control flow resolves concretely at scan time. The scan mirrors
// the symbolic compiler's conventions exactly — joint program-order
// counter over loads, stores and fences (advanced for dead statements
// too, so positions line up with encode.Accesses), operation ids per
// segment, atomic block ids — so the engine's axioms range over the
// same event structure the encoder constrains.
type Program struct {
	Events []Event
	Fences []FenceEv
	Loads  []int // event indices of the loads, in creation order

	ThreadNames []string
	envs        []map[lsl.Reg]binding
	stores      map[lsl.Loc][]int // same-address store candidates per location
	nLocs       int
}

type scanner struct {
	p         *Program
	group     int
	numGroups int
}

// Scan decides applicability of the fast path and builds the Program.
// threads must be the same slice handed to encode.Encoder.Encode
// (thread 0 the initialization pseudo-thread). Any construct the
// engine cannot model exactly — loops, data-dependent control flow,
// arithmetic, symbolic addresses, havocs, asserts, stores of loaded
// values — returns ErrNotApplicable.
func Scan(threads []encode.Thread) (*Program, error) {
	sc := &scanner{p: &Program{stores: map[lsl.Loc][]int{}}, group: -1}
	for ti, th := range threads {
		env := map[lsl.Reg]binding{}
		progIdx := 0
		for si, seg := range th.Segments {
			opID := -1
			if si < len(th.OpIDs) {
				opID = th.OpIDs[si]
			}
			broke, err := sc.stmts(ti, env, seg, &progIdx, opID)
			if err != nil {
				return nil, err
			}
			if broke != "" {
				return nil, fmt.Errorf("%w: break %q escapes its segment", ErrNotApplicable, broke)
			}
		}
		name := th.Name
		if name == "" && ti == 0 {
			name = "init"
		}
		sc.p.ThreadNames = append(sc.p.ThreadNames, name)
		sc.p.envs = append(sc.p.envs, env)
	}
	locs := map[lsl.Loc]bool{}
	for i := range sc.p.Events {
		locs[sc.p.Events[i].Loc] = true
	}
	sc.p.nLocs = len(locs)
	return sc.p, nil
}

// stmts walks one statement list on the (unique, concrete) live path.
// A taken break returns its target tag; the caller skips to the end of
// that block. Dead statements are walked with deadWalk so the
// program-order counter matches the encoder, which numbers unexecuted
// accesses too.
func (sc *scanner) stmts(ti int, env map[lsl.Reg]binding, list []lsl.Stmt,
	progIdx *int, opID int) (string, error) {

	lookup := func(r lsl.Reg) binding {
		if b, ok := env[r]; ok {
			return b
		}
		return binding{src: -1, val: lsl.Undef()}
	}
	for i, s := range list {
		switch s := s.(type) {
		case *lsl.ConstStmt:
			env[s.Dst] = binding{src: -1, val: s.Val}

		case *lsl.OpStmt:
			if s.Op != lsl.OpIdent {
				return "", fmt.Errorf("%w: operation %v", ErrNotApplicable, s.Op)
			}
			env[s.Dst] = lookup(s.Args[0])

		case *lsl.LoadStmt:
			addr := lookup(s.Addr)
			if addr.src >= 0 || addr.val.Kind != lsl.KindPtr {
				return "", fmt.Errorf("%w: load with non-constant address", ErrNotApplicable)
			}
			ev := Event{
				Idx: len(sc.p.Events), Thread: ti, ProgIdx: *progIdx,
				IsLoad: true, OpID: opID, Group: sc.group,
				Addr: addr.val, Loc: lsl.LocOf(addr.val), Desc: s.String(),
			}
			*progIdx++
			sc.p.Loads = append(sc.p.Loads, ev.Idx)
			sc.p.Events = append(sc.p.Events, ev)
			env[s.Dst] = binding{src: ev.Idx}

		case *lsl.StoreStmt:
			addr := lookup(s.Addr)
			if addr.src >= 0 || addr.val.Kind != lsl.KindPtr {
				return "", fmt.Errorf("%w: store to non-constant address", ErrNotApplicable)
			}
			val := lookup(s.Src)
			if val.src >= 0 {
				// A stored value flowing from a load would couple the
				// value axiom across events; keep the fragment exact.
				return "", fmt.Errorf("%w: store of a loaded value", ErrNotApplicable)
			}
			ev := Event{
				Idx: len(sc.p.Events), Thread: ti, ProgIdx: *progIdx,
				IsLoad: false, OpID: opID, Group: sc.group,
				Addr: addr.val, Loc: lsl.LocOf(addr.val), Val: val.val, Desc: s.String(),
			}
			*progIdx++
			sc.p.stores[ev.Loc] = append(sc.p.stores[ev.Loc], ev.Idx)
			sc.p.Events = append(sc.p.Events, ev)

		case *lsl.FenceStmt:
			sc.p.Fences = append(sc.p.Fences, FenceEv{Thread: ti, ProgIdx: *progIdx, Kind: s.Kind})
			*progIdx++

		case *lsl.AtomicStmt:
			if sc.group >= 0 {
				// Nested blocks merge, mirroring the compiler.
				broke, err := sc.stmts(ti, env, s.Body, progIdx, opID)
				if err != nil {
					return "", err
				}
				if broke != "" {
					deadWalk(list[i+1:], progIdx)
					return broke, nil
				}
				continue
			}
			sc.group = sc.numGroups
			sc.numGroups++
			broke, err := sc.stmts(ti, env, s.Body, progIdx, opID)
			sc.group = -1
			if err != nil {
				return "", err
			}
			if broke != "" {
				deadWalk(list[i+1:], progIdx)
				return broke, nil
			}

		case *lsl.BlockStmt:
			if s.Loop != lsl.NotLoop {
				return "", fmt.Errorf("%w: loop block %q", ErrNotApplicable, s.Tag)
			}
			broke, err := sc.stmts(ti, env, s.Body, progIdx, opID)
			if err != nil {
				return "", err
			}
			if broke == s.Tag {
				continue // consumed: execution resumes after this block
			}
			if broke != "" {
				deadWalk(list[i+1:], progIdx)
				return broke, nil
			}

		case *lsl.BreakStmt:
			cond := lookup(s.Cond)
			if cond.src >= 0 {
				return "", fmt.Errorf("%w: break on a loaded value", ErrNotApplicable)
			}
			truthy, ok := cond.val.IsTruthy()
			if !ok {
				return "", fmt.Errorf("%w: break on an undefined value", ErrNotApplicable)
			}
			if truthy {
				deadWalk(list[i+1:], progIdx)
				return s.Tag, nil
			}

		default:
			return "", fmt.Errorf("%w: statement %T", ErrNotApplicable, s)
		}
	}
	return "", nil
}

// deadWalk advances the program-order counter over statements the
// concrete path skips. The symbolic compiler numbers unexecuted
// accesses too (it emits them with a false execution guard), so live
// events keep identical positions under both.
func deadWalk(list []lsl.Stmt, progIdx *int) {
	for _, s := range list {
		switch s := s.(type) {
		case *lsl.LoadStmt, *lsl.StoreStmt, *lsl.FenceStmt:
			*progIdx++
		case *lsl.BlockStmt:
			deadWalk(s.Body, progIdx)
		case *lsl.AtomicStmt:
			deadWalk(s.Body, progIdx)
		}
	}
}

// NumEvents, NumLocs and Candidates feed the router's cost model.
func (p *Program) NumEvents() int { return len(p.Events) }
func (p *Program) NumLocs() int   { return p.nLocs }

// Candidates is the saturating product over loads of their reads-from
// source counts (same-location stores plus the initial memory) — the
// size of the enumeration space before pruning.
func (p *Program) Candidates() int {
	const limit = 1 << 30
	n := 1
	for _, li := range p.Loads {
		k := 1 + len(p.stores[p.Events[li].Loc])
		if n > limit/k {
			return limit
		}
		n *= k
	}
	return n
}

// resolveEntries maps the observation entries to scanned bindings.
func (p *Program) resolveEntries(entries []spec.Entry) ([]binding, error) {
	out := make([]binding, len(entries))
	for i, ent := range entries {
		if ent.Thread < 0 || ent.Thread >= len(p.envs) {
			return nil, fmt.Errorf("%w: entry %s names thread %d", ErrNotApplicable, ent.Label, ent.Thread)
		}
		b, ok := p.envs[ent.Thread][ent.Reg]
		if !ok {
			return nil, fmt.Errorf("%w: entry %s register %s never assigned", ErrNotApplicable, ent.Label, ent.Reg)
		}
		out[i] = b
	}
	return out, nil
}

package interp

import (
	"errors"
	"testing"

	"checkfence/internal/lsl"
)

func machine() *Machine {
	p := lsl.NewProgram()
	p.AddGlobal("g", 1)
	p.AddProc(&lsl.Proc{
		Name: "inc", Params: []lsl.Reg{"a"}, Results: []lsl.Reg{"r"},
		Body: []lsl.Stmt{
			&lsl.ConstStmt{Dst: "one", Val: lsl.Int(1)},
			&lsl.OpStmt{Dst: "r", Op: lsl.OpAdd, Args: []lsl.Reg{"a", "one"}},
		},
	})
	return NewMachine(p)
}

func TestCallAndReturn(t *testing.T) {
	m := machine()
	res, err := m.Call("inc", lsl.Int(41))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || !res[0].Equal(lsl.Int(42)) {
		t.Errorf("inc(41) = %v", res)
	}
	if _, err := m.Call("nosuch"); err == nil {
		t.Error("unknown procedure must fail")
	}
	if _, err := m.Call("inc"); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestMemoryAndClone(t *testing.T) {
	m := machine()
	env, err := m.RunBody([]lsl.Stmt{
		&lsl.ConstStmt{Dst: "p", Val: lsl.Ptr(0)},
		&lsl.ConstStmt{Dst: "v", Val: lsl.Int(7)},
		&lsl.StoreStmt{Addr: "p", Src: "v"},
		&lsl.LoadStmt{Dst: "r", Addr: "p"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !env["r"].Equal(lsl.Int(7)) {
		t.Errorf("r = %v", env["r"])
	}
	clone := m.Clone()
	_, err = clone.RunBody([]lsl.Stmt{
		&lsl.ConstStmt{Dst: "p", Val: lsl.Ptr(0)},
		&lsl.ConstStmt{Dst: "v", Val: lsl.Int(9)},
		&lsl.StoreStmt{Addr: "p", Src: "v"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Mem[lsl.LocOf(lsl.Ptr(0))].Equal(lsl.Int(7)) {
		t.Error("clone must not share memory")
	}
}

func TestLoadUninitializedIsUndef(t *testing.T) {
	m := machine()
	env, err := m.RunBody([]lsl.Stmt{
		&lsl.ConstStmt{Dst: "p", Val: lsl.Ptr(0)},
		&lsl.LoadStmt{Dst: "r", Addr: "p"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if env["r"].IsDefined() {
		t.Errorf("r = %v, want undefined", env["r"])
	}
}

func TestBlocksBreakContinue(t *testing.T) {
	m := machine()
	// Loop: c starts 0; continue while c < 3.
	env, err := m.RunBody([]lsl.Stmt{
		&lsl.ConstStmt{Dst: "c", Val: lsl.Int(0)},
		&lsl.ConstStmt{Dst: "one", Val: lsl.Int(1)},
		&lsl.ConstStmt{Dst: "three", Val: lsl.Int(3)},
		&lsl.BlockStmt{Tag: "L", Loop: lsl.BoundedLoop, Body: []lsl.Stmt{
			&lsl.OpStmt{Dst: "c", Op: lsl.OpAdd, Args: []lsl.Reg{"c", "one"}},
			&lsl.OpStmt{Dst: "again", Op: lsl.OpLt, Args: []lsl.Reg{"c", "three"}},
			&lsl.ContinueStmt{Cond: "again", Tag: "L"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !env["c"].Equal(lsl.Int(3)) {
		t.Errorf("c = %v, want 3", env["c"])
	}
}

func TestBreakOutOfNestedBlocks(t *testing.T) {
	m := machine()
	env, err := m.RunBody([]lsl.Stmt{
		&lsl.ConstStmt{Dst: "t", Val: lsl.Int(1)},
		&lsl.ConstStmt{Dst: "r", Val: lsl.Int(0)},
		&lsl.BlockStmt{Tag: "outer", Body: []lsl.Stmt{
			&lsl.BlockStmt{Tag: "inner", Body: []lsl.Stmt{
				&lsl.BreakStmt{Cond: "t", Tag: "outer"},
			}},
			&lsl.ConstStmt{Dst: "r", Val: lsl.Int(1)}, // skipped
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !env["r"].Equal(lsl.Int(0)) {
		t.Error("break must skip the rest of the outer block")
	}
}

func TestFuelExhaustion(t *testing.T) {
	m := machine()
	m.Fuel = 100
	_, err := m.RunBody([]lsl.Stmt{
		&lsl.ConstStmt{Dst: "t", Val: lsl.Int(1)},
		&lsl.BlockStmt{Tag: "L", Loop: lsl.BoundedLoop, Body: []lsl.Stmt{
			&lsl.ContinueStmt{Cond: "t", Tag: "L"},
		}},
	})
	if !errors.Is(err, ErrFuel) {
		t.Errorf("expected ErrFuel, got %v", err)
	}
}

func TestAssumeFailureWinsOverFuel(t *testing.T) {
	// Regression: an execution that exhausts its fuel exactly when it
	// reaches a failing assume is infeasible, not a runaway. If ErrFuel
	// won, refset mining would abort a whole enumeration on a
	// deep-but-infeasible path instead of pruning it.
	m := machine()
	m.Fuel = 1
	_, err := m.RunBody([]lsl.Stmt{
		&lsl.ConstStmt{Dst: "f", Val: lsl.Int(0)}, // consumes the last fuel
		&lsl.AssumeStmt{Cond: "f"},
	})
	if !errors.Is(err, ErrAssumeFailed) {
		t.Errorf("expected ErrAssumeFailed, got %v", err)
	}

	// A passing assume at zero fuel must not fail either; the next
	// non-assume statement still pays.
	m = machine()
	m.Fuel = 2
	_, err = m.RunBody([]lsl.Stmt{
		&lsl.ConstStmt{Dst: "t", Val: lsl.Int(1)},
		&lsl.ConstStmt{Dst: "x", Val: lsl.Int(2)},
		&lsl.AssumeStmt{Cond: "t"},
		&lsl.ConstStmt{Dst: "y", Val: lsl.Int(3)},
	})
	if !errors.Is(err, ErrFuel) {
		t.Errorf("expected ErrFuel after passing assume, got %v", err)
	}
}

func TestHooksInterceptMemoryOps(t *testing.T) {
	m := machine()
	var stores []string
	var fences []lsl.FenceKind
	m.LoadHook = func(addr lsl.Value) (lsl.Value, error) {
		return lsl.Int(99), nil
	}
	m.StoreHook = func(addr, val lsl.Value) error {
		stores = append(stores, addr.String()+"="+val.String())
		return nil
	}
	m.FenceHook = func(kind lsl.FenceKind) error {
		fences = append(fences, kind)
		return nil
	}
	env, err := m.RunBody([]lsl.Stmt{
		&lsl.ConstStmt{Dst: "p", Val: lsl.Ptr(0)},
		&lsl.ConstStmt{Dst: "v", Val: lsl.Int(7)},
		&lsl.StoreStmt{Addr: "p", Src: "v"},
		&lsl.FenceStmt{Kind: lsl.FenceStoreLoad},
		&lsl.LoadStmt{Dst: "r", Addr: "p"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// LoadHook overrides memory even though the store wrote 7.
	if !env["r"].Equal(lsl.Int(99)) {
		t.Errorf("r = %v, want hook value 99", env["r"])
	}
	if len(stores) != 1 {
		t.Errorf("stores = %v", stores)
	}
	if len(fences) != 1 || fences[0] != lsl.FenceStoreLoad {
		t.Errorf("fences = %v", fences)
	}
	// Hook errors abort execution.
	m.LoadHook = func(addr lsl.Value) (lsl.Value, error) {
		return lsl.Undef(), errors.New("divergence")
	}
	_, err = m.RunBody([]lsl.Stmt{
		&lsl.ConstStmt{Dst: "p", Val: lsl.Ptr(0)},
		&lsl.LoadStmt{Dst: "r", Addr: "p"},
	})
	if err == nil || err.Error() != "divergence" {
		t.Errorf("expected hook error, got %v", err)
	}
	// Clone carries hooks along.
	if m.Clone().LoadHook == nil {
		t.Error("Clone must preserve hooks")
	}
}

func TestUndefUseErrors(t *testing.T) {
	cases := [][]lsl.Stmt{
		{ // branch on undefined
			&lsl.BlockStmt{Tag: "B", Body: []lsl.Stmt{
				&lsl.BreakStmt{Cond: "never", Tag: "B"},
			}},
		},
		{ // arithmetic on undefined
			&lsl.ConstStmt{Dst: "one", Val: lsl.Int(1)},
			&lsl.OpStmt{Dst: "x", Op: lsl.OpAdd, Args: []lsl.Reg{"never", "one"}},
		},
		{ // load through undefined pointer
			&lsl.LoadStmt{Dst: "x", Addr: "never"},
		},
		{ // store through integer
			&lsl.ConstStmt{Dst: "i", Val: lsl.Int(3)},
			&lsl.StoreStmt{Addr: "i", Src: "i"},
		},
	}
	for i, body := range cases {
		m := machine()
		_, err := m.RunBody(body)
		var rte *RuntimeError
		if !errors.As(err, &rte) {
			t.Errorf("case %d: expected RuntimeError, got %v", i, err)
		}
	}
}

func TestHavocUsesOracle(t *testing.T) {
	m := machine()
	m.Oracle = func(bits int) int64 { return 1 }
	env, err := m.RunBody([]lsl.Stmt{&lsl.HavocStmt{Dst: "h", Bits: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !env["h"].Equal(lsl.Int(1)) {
		t.Errorf("h = %v", env["h"])
	}
}

func TestAtomicIsTransparentSequentially(t *testing.T) {
	m := machine()
	env, err := m.RunBody([]lsl.Stmt{
		&lsl.AtomicStmt{Body: []lsl.Stmt{
			&lsl.ConstStmt{Dst: "x", Val: lsl.Int(5)},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !env["x"].Equal(lsl.Int(5)) {
		t.Errorf("x = %v", env["x"])
	}
}

func TestAllocDistinct(t *testing.T) {
	m := machine()
	env, err := m.RunBody([]lsl.Stmt{
		&lsl.AllocStmt{Dst: "a", Site: "s"},
		&lsl.AllocStmt{Dst: "b", Site: "s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if env["a"].Equal(env["b"]) {
		t.Error("allocations must differ")
	}
	if env["a"].Kind != lsl.KindPtr {
		t.Error("alloc must return a pointer")
	}
}

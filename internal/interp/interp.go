// Package interp is a reference interpreter for LSL programs under
// sequential (single-thread-at-a-time) semantics.
//
// CheckFence uses it in three roles: as a differential-testing oracle
// for the translator and the SAT encoder, as the fast path for
// enumerating serial observation sets directly from C code (the
// "refset" mining variant of the paper's Fig. 11a), and inside the
// commit-point baseline to compute expected results.
package interp

import (
	"errors"
	"fmt"

	"checkfence/internal/lsl"
)

// RuntimeError is an LSL-level runtime error (assertion failure or use
// of an undefined value), i.e. a bug CheckFence reports.
type RuntimeError struct {
	Msg string
}

func (e *RuntimeError) Error() string { return "runtime error: " + e.Msg }

// ErrAssumeFailed marks an execution excluded by an assume statement;
// it is not a bug, the execution simply does not exist.
var ErrAssumeFailed = errors.New("interp: assumption failed (execution infeasible)")

// ErrFuel is returned when the step budget is exhausted (runaway
// loop).
var ErrFuel = errors.New("interp: step budget exhausted")

// Oracle supplies nondeterministic choices for havoc statements. The
// enumeration drivers implement it with depth-first search over
// decision points.
type Oracle func(bits int) int64

// Machine is a sequential LSL interpreter with a shared memory.
type Machine struct {
	Prog   *lsl.Program
	Mem    map[lsl.Loc]lsl.Value
	Oracle Oracle
	Fuel   int

	// LoadHook, when non-nil, intercepts every memory load instead of
	// reading Mem. The trace replay validator uses it to feed the load
	// values a decoded counterexample committed to; a returned error
	// aborts execution (a replay divergence).
	LoadHook func(addr lsl.Value) (lsl.Value, error)
	// StoreHook, when non-nil, observes every store (after the address
	// check, before Mem is written). A returned error aborts execution.
	StoreHook func(addr, val lsl.Value) error
	// FenceHook, when non-nil, observes every fence occurrence.
	FenceHook func(kind lsl.FenceKind) error

	nextBase int64
}

// NewMachine creates a machine for the program. Memory starts fully
// undefined; globals obtain definite values only when stored to
// (matching the paper's detection of missing initialization).
func NewMachine(prog *lsl.Program) *Machine {
	return &Machine{
		Prog:     prog,
		Mem:      make(map[lsl.Loc]lsl.Value),
		Oracle:   func(bits int) int64 { return 0 },
		Fuel:     100000,
		nextBase: prog.NextBase,
	}
}

// Clone returns a deep copy sharing the program but not the memory,
// used by enumeration drivers to branch on nondeterminism.
func (m *Machine) Clone() *Machine {
	mem := make(map[lsl.Loc]lsl.Value, len(m.Mem))
	for k, v := range m.Mem {
		mem[k] = v
	}
	return &Machine{
		Prog: m.Prog, Mem: mem, Oracle: m.Oracle, Fuel: m.Fuel,
		LoadHook: m.LoadHook, StoreHook: m.StoreHook, FenceHook: m.FenceHook,
		nextBase: m.nextBase,
	}
}

type signalKind int

const (
	sigNone signalKind = iota
	sigBreak
	sigContinue
)

type signal struct {
	kind signalKind
	tag  string
}

type frame struct {
	env map[lsl.Reg]lsl.Value
}

// Call executes the named procedure with the given argument values and
// returns its results.
func (m *Machine) Call(proc string, args ...lsl.Value) ([]lsl.Value, error) {
	p, ok := m.Prog.Procs[proc]
	if !ok {
		return nil, fmt.Errorf("interp: undefined procedure %q", proc)
	}
	if len(args) != len(p.Params) {
		return nil, fmt.Errorf("interp: %s expects %d args, got %d", proc, len(p.Params), len(args))
	}
	f := &frame{env: make(map[lsl.Reg]lsl.Value)}
	for i, param := range p.Params {
		f.env[param] = args[i]
	}
	sig, err := m.exec(p.Body, f)
	if err != nil {
		return nil, err
	}
	if sig.kind != sigNone {
		return nil, fmt.Errorf("interp: %s finished with unresolved %v %q", proc, sig.kind, sig.tag)
	}
	results := make([]lsl.Value, len(p.Results))
	for i, r := range p.Results {
		if v, ok := f.env[r]; ok {
			results[i] = v
		} else {
			results[i] = lsl.Undef()
		}
	}
	return results, nil
}

// RunBody executes a statement list in a fresh frame (the harness's
// per-operation segments) and returns the final register environment.
func (m *Machine) RunBody(stmts []lsl.Stmt) (map[lsl.Reg]lsl.Value, error) {
	f := &frame{env: make(map[lsl.Reg]lsl.Value)}
	sig, err := m.exec(stmts, f)
	if err != nil {
		return nil, err
	}
	if sig.kind != sigNone {
		return nil, fmt.Errorf("interp: body finished with unresolved break/continue %q", sig.tag)
	}
	return f.env, nil
}

func (m *Machine) exec(stmts []lsl.Stmt, f *frame) (signal, error) {
	for _, s := range stmts {
		// Assumptions are exempt from the fuel budget: an execution
		// that both exhausts its fuel and fails an assume is
		// infeasible, not a runaway, so ErrAssumeFailed must win over
		// ErrFuel. Otherwise refset mining would abort an entire
		// enumeration on a deep-but-infeasible path instead of
		// pruning it.
		if _, isAssume := s.(*lsl.AssumeStmt); !isAssume {
			if m.Fuel <= 0 {
				return signal{}, ErrFuel
			}
			m.Fuel--
		}
		sig, err := m.execOne(s, f)
		if err != nil {
			return signal{}, err
		}
		if sig.kind != sigNone {
			return sig, nil
		}
	}
	return signal{}, nil
}

func (m *Machine) reg(f *frame, r lsl.Reg) lsl.Value {
	if v, ok := f.env[r]; ok {
		return v
	}
	return lsl.Undef()
}

func (m *Machine) cond(f *frame, r lsl.Reg, ctx string) (bool, error) {
	v := m.reg(f, r)
	truthy, ok := v.IsTruthy()
	if !ok {
		return false, &RuntimeError{Msg: "undefined value used in " + ctx}
	}
	return truthy, nil
}

func (m *Machine) execOne(s lsl.Stmt, f *frame) (signal, error) {
	switch s := s.(type) {
	case *lsl.ConstStmt:
		f.env[s.Dst] = s.Val
		return signal{}, nil

	case *lsl.OpStmt:
		v, err := m.applyOp(s, f)
		if err != nil {
			return signal{}, err
		}
		f.env[s.Dst] = v
		return signal{}, nil

	case *lsl.LoadStmt:
		addr := m.reg(f, s.Addr)
		if addr.Kind != lsl.KindPtr {
			return signal{}, &RuntimeError{Msg: fmt.Sprintf("load from non-pointer address %v", addr)}
		}
		var v lsl.Value
		if m.LoadHook != nil {
			hv, err := m.LoadHook(addr)
			if err != nil {
				return signal{}, err
			}
			v = hv
		} else {
			var ok bool
			v, ok = m.Mem[lsl.LocOf(addr)]
			if !ok {
				v = lsl.Undef()
			}
		}
		f.env[s.Dst] = v
		return signal{}, nil

	case *lsl.StoreStmt:
		addr := m.reg(f, s.Addr)
		if addr.Kind != lsl.KindPtr {
			return signal{}, &RuntimeError{Msg: fmt.Sprintf("store to non-pointer address %v", addr)}
		}
		src := m.reg(f, s.Src)
		if m.StoreHook != nil {
			if err := m.StoreHook(addr, src); err != nil {
				return signal{}, err
			}
		}
		m.Mem[lsl.LocOf(addr)] = src
		return signal{}, nil

	case *lsl.FenceStmt:
		if m.FenceHook != nil {
			if err := m.FenceHook(s.Kind); err != nil {
				return signal{}, err
			}
		}
		return signal{}, nil // otherwise a no-op under sequential semantics

	case *lsl.AtomicStmt:
		return m.exec(s.Body, f)

	case *lsl.CallStmt:
		callee, ok := m.Prog.Procs[s.Proc]
		if !ok {
			return signal{}, fmt.Errorf("interp: undefined procedure %q", s.Proc)
		}
		args := make([]lsl.Value, len(s.Args))
		for i, a := range s.Args {
			args[i] = m.reg(f, a)
		}
		rets, err := m.Call(s.Proc, args...)
		if err != nil {
			return signal{}, err
		}
		if len(s.Rets) > len(callee.Results) {
			return signal{}, fmt.Errorf("interp: call to %s wants %d results, has %d",
				s.Proc, len(s.Rets), len(callee.Results))
		}
		for i, r := range s.Rets {
			f.env[r] = rets[i]
		}
		return signal{}, nil

	case *lsl.BlockStmt:
		for {
			sig, err := m.exec(s.Body, f)
			if err != nil {
				return signal{}, err
			}
			switch {
			case sig.kind == sigNone:
				return signal{}, nil
			case sig.tag == s.Tag && sig.kind == sigBreak:
				return signal{}, nil
			case sig.tag == s.Tag && sig.kind == sigContinue:
				if s.Loop == lsl.NotLoop {
					return signal{}, fmt.Errorf("interp: continue on non-loop block %q", s.Tag)
				}
				continue
			default:
				return sig, nil // propagate to enclosing block
			}
		}

	case *lsl.BreakStmt:
		t, err := m.cond(f, s.Cond, "break condition")
		if err != nil {
			return signal{}, err
		}
		if t {
			return signal{kind: sigBreak, tag: s.Tag}, nil
		}
		return signal{}, nil

	case *lsl.ContinueStmt:
		t, err := m.cond(f, s.Cond, "continue condition")
		if err != nil {
			return signal{}, err
		}
		if t {
			return signal{kind: sigContinue, tag: s.Tag}, nil
		}
		return signal{}, nil

	case *lsl.AssertStmt:
		t, err := m.cond(f, s.Cond, "assertion")
		if err != nil {
			return signal{}, err
		}
		if !t {
			return signal{}, &RuntimeError{Msg: "assertion failed: " + s.Msg}
		}
		return signal{}, nil

	case *lsl.AssumeStmt:
		t, err := m.cond(f, s.Cond, "assumption")
		if err != nil {
			return signal{}, err
		}
		if !t {
			return signal{}, ErrAssumeFailed
		}
		return signal{}, nil

	case *lsl.HavocStmt:
		f.env[s.Dst] = lsl.Int(m.Oracle(s.Bits))
		return signal{}, nil

	case *lsl.AllocStmt:
		base := m.nextBase
		m.nextBase++
		f.env[s.Dst] = lsl.Ptr(base)
		return signal{}, nil

	case *lsl.OverflowStmt:
		// Executing an overflow marker means the unrolling bound was
		// insufficient for this path.
		return signal{}, fmt.Errorf("interp: loop bound overflow (loop #%d)", s.LoopID)
	}
	return signal{}, fmt.Errorf("interp: unsupported statement %T", s)
}

func (m *Machine) applyOp(s *lsl.OpStmt, f *frame) (lsl.Value, error) {
	get := func(i int) lsl.Value { return m.reg(f, s.Args[i]) }

	switch s.Op {
	case lsl.OpIdent:
		return get(0), nil
	case lsl.OpEq, lsl.OpNe:
		a, b := get(0), get(1)
		if a.Kind == lsl.KindUndef || b.Kind == lsl.KindUndef {
			return lsl.Undef(), &RuntimeError{Msg: "undefined value used in comparison"}
		}
		eq := a.Equal(b)
		if s.Op == lsl.OpNe {
			eq = !eq
		}
		return lsl.Bool(eq), nil
	case lsl.OpField:
		a := get(0)
		if a.Kind != lsl.KindPtr {
			return lsl.Undef(), &RuntimeError{Msg: fmt.Sprintf("field access on %v", a)}
		}
		v, err := a.Field(s.Imm)
		if err != nil {
			return lsl.Undef(), &RuntimeError{Msg: err.Error()}
		}
		return v, nil
	case lsl.OpIndex:
		a, idx := get(0), get(1)
		if a.Kind != lsl.KindPtr {
			return lsl.Undef(), &RuntimeError{Msg: fmt.Sprintf("index on %v", a)}
		}
		if idx.Kind != lsl.KindInt {
			return lsl.Undef(), &RuntimeError{Msg: fmt.Sprintf("non-integer index %v", idx)}
		}
		v, err := a.Field(idx.Int)
		if err != nil {
			return lsl.Undef(), &RuntimeError{Msg: err.Error()}
		}
		return v, nil
	case lsl.OpSelect:
		c := get(0)
		t, ok := c.IsTruthy()
		if !ok {
			return lsl.Undef(), &RuntimeError{Msg: "undefined value used in select"}
		}
		if t {
			return get(1), nil
		}
		return get(2), nil
	case lsl.OpBool, lsl.OpNot:
		a := get(0)
		t, ok := a.IsTruthy()
		if !ok {
			return lsl.Undef(), &RuntimeError{Msg: "undefined value used in condition"}
		}
		if s.Op == lsl.OpNot {
			t = !t
		}
		return lsl.Bool(t), nil
	case lsl.OpNeg:
		a := get(0)
		if a.Kind != lsl.KindInt {
			return lsl.Undef(), &RuntimeError{Msg: fmt.Sprintf("negation of %v", a)}
		}
		return lsl.Int(-a.Int), nil
	}

	// Remaining operators are integer arithmetic/relational.
	a, b := get(0), get(1)
	if a.Kind != lsl.KindInt || b.Kind != lsl.KindInt {
		return lsl.Undef(), &RuntimeError{
			Msg: fmt.Sprintf("%v applied to non-integers %v, %v", s.Op, a, b)}
	}
	x, y := a.Int, b.Int
	switch s.Op {
	case lsl.OpAdd:
		return lsl.Int(x + y), nil
	case lsl.OpSub:
		return lsl.Int(x - y), nil
	case lsl.OpMul:
		return lsl.Int(x * y), nil
	case lsl.OpLt:
		return lsl.Bool(x < y), nil
	case lsl.OpLe:
		return lsl.Bool(x <= y), nil
	case lsl.OpGt:
		return lsl.Bool(x > y), nil
	case lsl.OpGe:
		return lsl.Bool(x >= y), nil
	case lsl.OpAnd:
		return lsl.Bool(x != 0 && y != 0), nil
	case lsl.OpOr:
		return lsl.Bool(x != 0 || y != 0), nil
	case lsl.OpXor:
		return lsl.Int(x ^ y), nil
	}
	return lsl.Undef(), fmt.Errorf("interp: unsupported op %v", s.Op)
}

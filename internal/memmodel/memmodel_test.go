package memmodel

import "testing"

func TestParseRoundTrip(t *testing.T) {
	for _, m := range All() {
		got, err := Parse(m.String())
		if err != nil || got != m {
			t.Errorf("Parse(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := Parse("itanium"); err == nil {
		t.Error("unknown model must fail")
	}
	if m, err := Parse("rmo"); err != nil || m != Relaxed {
		t.Errorf("rmo alias: %v, %v", m, err)
	}
}

func TestStrength(t *testing.T) {
	// Seriality > SC > TSO > PSO > Relaxed (paper §2.3.3 plus the
	// SPARC models it names).
	order := All()
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if !order[i].StrongerThan(order[j]) {
				t.Errorf("%v must be stronger than %v", order[i], order[j])
			}
			if order[j].StrongerThan(order[i]) {
				t.Errorf("%v must not be stronger than %v", order[j], order[i])
			}
		}
	}
	for _, m := range All() {
		if !m.StrongerThan(m) {
			t.Errorf("%v must be as strong as itself", m)
		}
	}
}

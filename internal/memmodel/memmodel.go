// Package memmodel defines the memory consistency models CheckFence
// checks against (paper §2.3).
//
// Three models are supported:
//
//   - SequentialConsistency: Lamport's classic model. The memory order
//     must extend program order, and each load reads the latest store
//     to its address in memory order.
//
//   - Relaxed: the paper's common conservative approximation of SPARC
//     TSO/PSO/RMO, Alpha, and IBM 370/390/z. It permits reordering of
//     accesses to different addresses, store buffering with local
//     forwarding, reordering of loads to the same address, and
//     reordering of dependent instructions. Program order is enforced
//     only from an access to a *later store to the same address*, by
//     memory ordering fences, and inside atomic blocks.
//
//   - Serial: the specification-side "model" used for mining: a single
//     processor interleaves the threads and operations execute
//     atomically (sequential consistency plus operation contiguity).
//
// The axioms themselves are encoded in package encode; this package
// carries the identity, ordering-strength relation, and parsing.
package memmodel

import "fmt"

// Model identifies a memory consistency model.
type Model uint8

// The supported models. TSO and PSO are extensions beyond the paper's
// two hardware models: they instantiate the same axiomatic framework
// for the stronger SPARC models the paper names in §2.3.3, making the
// §4.2 observation checkable ("on some architectures, such as Sun
// TSO, these fences are automatic and the algorithm works without
// inserting any fences").
const (
	SequentialConsistency Model = iota
	Relaxed
	Serial
	// TSO (total store order): only store→load program order is
	// relaxed (FIFO store buffer with local forwarding).
	TSO
	// PSO (partial store order): additionally relaxes store→store to
	// different addresses (non-FIFO store buffer); loads stay ordered.
	PSO
)

func (m Model) String() string {
	switch m {
	case SequentialConsistency:
		return "sc"
	case Relaxed:
		return "relaxed"
	case Serial:
		return "serial"
	case TSO:
		return "tso"
	case PSO:
		return "pso"
	default:
		return fmt.Sprintf("Model(%d)", uint8(m))
	}
}

// Parse converts a model name to a Model.
func Parse(s string) (Model, error) {
	switch s {
	case "sc", "sequential", "sequential-consistency":
		return SequentialConsistency, nil
	case "relaxed", "rmo":
		return Relaxed, nil
	case "serial", "atomic":
		return Serial, nil
	case "tso":
		return TSO, nil
	case "pso":
		return PSO, nil
	}
	return 0, fmt.Errorf("memmodel: unknown model %q", s)
}

// StrongerThan reports whether every execution trace allowed by m is
// also allowed by other (paper §2.3.3: seriality > sequential
// consistency > TSO > PSO > Relaxed).
func (m Model) StrongerThan(other Model) bool {
	rank := func(x Model) int {
		switch x {
		case Serial:
			return 4
		case SequentialConsistency:
			return 3
		case TSO:
			return 2
		case PSO:
			return 1
		default:
			return 0
		}
	}
	return rank(m) >= rank(other)
}

// All lists the supported models in decreasing strength.
func All() []Model {
	return []Model{Serial, SequentialConsistency, TSO, PSO, Relaxed}
}

// Weakest returns the weakest model of a non-empty set: the one every
// other member is StrongerThan. The strength order is total, so the
// weakest member's executions include every other member's — the
// model-sweep encoder builds its base axioms from it.
func Weakest(models []Model) Model {
	w := models[0]
	for _, m := range models[1:] {
		if w.StrongerThan(m) {
			w = m
		}
	}
	return w
}

// The per-model ordering predicates below are the single shared
// definition of each model's axioms; the SAT encoder
// (internal/encode), the trace validator (internal/validate), and the
// polynomial reads-from engine (internal/rf) all consult them so the
// three implementations cannot drift apart on what a model permits.

// KeepsProgramOrder reports whether the model unconditionally orders a
// same-thread access pair a <p b of the given kinds in memory order
// (paper §2.3): strong models keep every pair, TSO relaxes only
// store→load (FIFO store buffer), PSO additionally relaxes
// store→store (loads stay ordered), and Relaxed keeps nothing
// unconditionally.
func (m Model) KeepsProgramOrder(aIsLoad, bIsLoad bool) bool {
	switch m {
	case SequentialConsistency, Serial:
		return true
	case TSO:
		return !(!aIsLoad && bIsLoad)
	case PSO:
		return aIsLoad
	default:
		return false
	}
}

// OrdersSameAddrStore reports whether the model's conditional
// same-address axiom orders a same-thread pair a <p b when both access
// the same address and b is a store (Relaxed axiom 1 of §2.3.2; for
// PSO only the store→store case remains conditional — its load-first
// pairs are already unconditional per KeepsProgramOrder).
func (m Model) OrdersSameAddrStore(aIsLoad bool) bool {
	switch m {
	case Relaxed:
		return true
	case PSO:
		return !aIsLoad
	default:
		return false
	}
}

// Forwards reports whether the model has a store buffer with local
// forwarding: a program-order-earlier store of the same thread is
// visible to a load regardless of their global memory order.
func (m Model) Forwards() bool {
	switch m {
	case TSO, PSO, Relaxed:
		return true
	}
	return false
}

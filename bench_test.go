// Benchmarks regenerating the paper's tables and figures (Section 4).
// Each paper artifact has a corresponding benchmark family here; the
// cmd/benchtab command prints the full tables, while these targets
// keep the measurements runnable through `go test -bench`.
//
// The benchmarks use the small and medium Fig. 8 tests so that the
// whole suite stays laptop-scale; EXPERIMENTS.md records the measured
// numbers next to the paper's.
package checkfence_test

import (
	"testing"

	"checkfence"
	"checkfence/internal/commit"
	"checkfence/internal/harness"
	"checkfence/internal/litmus"
	"checkfence/internal/memmodel"
	"checkfence/internal/refimpl"
)

// benchCheck runs one full check per iteration and reports the
// domain metrics of the paper's Fig. 10a row.
func benchCheck(b *testing.B, impl, test string, opts checkfence.Options) {
	b.Helper()
	var last *checkfence.Result
	for i := 0; i < b.N; i++ {
		res, err := checkfence.Check(impl, test, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Stats.Instrs), "instrs")
	b.ReportMetric(float64(last.Stats.Loads+last.Stats.Stores), "accesses")
	b.ReportMetric(float64(last.Stats.CNFVars), "cnf-vars")
	b.ReportMetric(float64(last.Stats.CNFClauses), "cnf-clauses")
	b.ReportMetric(float64(last.Stats.ObsSetSize), "obs-set")
}

// BenchmarkFig10Inclusion reproduces rows of the Fig. 10a statistics
// table: full inclusion checks on the Relaxed model.
func BenchmarkFig10Inclusion(b *testing.B) {
	cases := []struct{ impl, test string }{
		{"ms2", "T0"},
		{"ms2", "Tpc2"},
		{"msn", "T0"},
		{"msn", "Ti2"},
		{"msn", "Tpc2"},
		{"lazylist", "Sac"},
		{"lazylist", "Sar"},
		{"harris", "Sac"},
		{"snark", "Da"},
	}
	for _, c := range cases {
		b.Run(c.impl+"/"+c.test, func(b *testing.B) {
			benchCheck(b, c.impl, c.test, checkfence.Options{Model: checkfence.Relaxed})
		})
	}
}

// BenchmarkFig10bScaling measures the growth trend of Fig. 10b: the
// same producer/consumer test at increasing size.
func BenchmarkFig10bScaling(b *testing.B) {
	for _, test := range []string{"Tpc2", "Tpc3"} {
		b.Run("msn/"+test, func(b *testing.B) {
			benchCheck(b, "msn", test, checkfence.Options{Model: checkfence.Relaxed})
		})
	}
}

// BenchmarkFig11aMiningSAT measures specification mining on the
// Serial model (Fig. 11a, SAT enumeration path).
func BenchmarkFig11aMiningSAT(b *testing.B) {
	cases := []struct{ impl, test string }{
		{"msn", "T1"},
		{"lazylist", "Sacr"},
	}
	for _, c := range cases {
		b.Run(c.impl+"/"+c.test, func(b *testing.B) {
			benchCheck(b, c.impl, c.test, checkfence.Options{Model: checkfence.Serial})
		})
	}
}

// BenchmarkFig11aMiningRefset measures the reference-implementation
// enumeration path of Fig. 11a.
func BenchmarkFig11aMiningRefset(b *testing.B) {
	cases := []struct{ impl, test string }{
		{"msn", "Tpc3"},
		{"lazylist", "Sacr2"},
		{"snark", "Dq"},
	}
	for _, c := range cases {
		b.Run(c.impl+"/"+c.test, func(b *testing.B) {
			impl, err := harness.Get(c.impl)
			if err != nil {
				b.Fatal(err)
			}
			test, err := harness.GetTest(impl, c.test)
			if err != nil {
				b.Fatal(err)
			}
			var size int
			for i := 0; i < b.N; i++ {
				set, err := refimpl.Enumerate(impl, test)
				if err != nil {
					b.Fatal(err)
				}
				size = set.Len()
			}
			b.ReportMetric(float64(size), "obs-set")
		})
	}
}

// BenchmarkFig11cRangeAnalysis measures the same check with the range
// analysis on and off (Fig. 11c).
func BenchmarkFig11cRangeAnalysis(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "with"
		if disabled {
			name = "without"
		}
		b.Run(name, func(b *testing.B) {
			benchCheck(b, "msn", "T0", checkfence.Options{
				Model:                checkfence.Relaxed,
				DisableRangeAnalysis: disabled,
			})
		})
	}
}

// BenchmarkFig12Methods compares the observation-set method with the
// commit-point baseline (Fig. 12).
func BenchmarkFig12Methods(b *testing.B) {
	b.Run("observation-set/T0", func(b *testing.B) {
		benchCheck(b, "msn-commit", "T0", checkfence.Options{Model: checkfence.Relaxed})
	})
	b.Run("commit-point/T0", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := commit.Check("msn-commit", "T0", memmodel.Relaxed)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Pass {
				b.Fatalf("unexpected failure: %s", res.Desc)
			}
		}
	})
}

// BenchmarkModelChoice measures the §4.4 observation that the model
// choice has little impact on runtime.
func BenchmarkModelChoice(b *testing.B) {
	for _, m := range []checkfence.Model{checkfence.SequentialConsistency, checkfence.Relaxed} {
		b.Run(m.String(), func(b *testing.B) {
			benchCheck(b, "msn", "Ti2", checkfence.Options{Model: m})
		})
	}
}

// BenchmarkFig2IRIW solves the paper's Fig. 2 litmus execution
// (forbidden on Relaxed because it orders all stores globally).
func BenchmarkFig2IRIW(b *testing.B) {
	var iriw litmus.Test
	for _, t := range litmus.Tests() {
		if t.Name == "iriw" {
			iriw = t
		}
	}
	if iriw.Name == "" {
		b.Fatal("iriw litmus test not found")
	}
	for i := 0; i < b.N; i++ {
		observable, err := iriw.Observable(memmodel.Relaxed)
		if err != nil {
			b.Fatal(err)
		}
		if observable {
			b.Fatal("IRIW must be forbidden on Relaxed")
		}
	}
}

// BenchmarkSpecMiningIterations tracks the mining loop's SAT
// iteration count (one model solve per observation).
func BenchmarkSpecMiningIterations(b *testing.B) {
	var iters int
	for i := 0; i < b.N; i++ {
		res, err := checkfence.Check("msn", "T1", checkfence.Options{Model: checkfence.Serial})
		if err != nil {
			b.Fatal(err)
		}
		iters = res.Stats.MineIterations
	}
	b.ReportMetric(float64(iters), "iterations")
}

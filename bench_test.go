// Benchmarks regenerating the paper's tables and figures (Section 4).
// Each paper artifact has a corresponding benchmark family here; the
// cmd/benchtab command prints the full tables, while these targets
// keep the measurements runnable through `go test -bench`.
//
// The benchmarks use the small and medium Fig. 8 tests so that the
// whole suite stays laptop-scale; EXPERIMENTS.md records the measured
// numbers next to the paper's.
package checkfence_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"checkfence"
	"checkfence/internal/commit"
	"checkfence/internal/harness"
	"checkfence/internal/litmus"
	"checkfence/internal/memmodel"
	"checkfence/internal/refimpl"
)

// benchCheck runs one full check per iteration and reports the
// domain metrics of the paper's Fig. 10a row.
func benchCheck(b *testing.B, impl, test string, opts checkfence.Options) {
	b.Helper()
	var last *checkfence.Result
	for i := 0; i < b.N; i++ {
		res, err := checkfence.Check(impl, test, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Stats.Instrs), "instrs")
	b.ReportMetric(float64(last.Stats.Loads+last.Stats.Stores), "accesses")
	b.ReportMetric(float64(last.Stats.CNFVars), "cnf-vars")
	b.ReportMetric(float64(last.Stats.CNFClauses), "cnf-clauses")
	b.ReportMetric(float64(last.Stats.ObsSetSize), "obs-set")
}

// BenchmarkFig10Inclusion reproduces rows of the Fig. 10a statistics
// table: full inclusion checks on the Relaxed model.
func BenchmarkFig10Inclusion(b *testing.B) {
	cases := []struct{ impl, test string }{
		{"ms2", "T0"},
		{"ms2", "Tpc2"},
		{"msn", "T0"},
		{"msn", "Ti2"},
		{"msn", "Tpc2"},
		{"lazylist", "Sac"},
		{"lazylist", "Sar"},
		{"harris", "Sac"},
		{"snark", "Da"},
	}
	for _, c := range cases {
		b.Run(c.impl+"/"+c.test, func(b *testing.B) {
			benchCheck(b, c.impl, c.test, checkfence.Options{Model: checkfence.Relaxed})
		})
	}
}

// BenchmarkFig10bScaling measures the growth trend of Fig. 10b: the
// same producer/consumer test at increasing size.
func BenchmarkFig10bScaling(b *testing.B) {
	for _, test := range []string{"Tpc2", "Tpc3"} {
		b.Run("msn/"+test, func(b *testing.B) {
			benchCheck(b, "msn", test, checkfence.Options{Model: checkfence.Relaxed})
		})
	}
}

// BenchmarkFig11aMiningSAT measures specification mining on the
// Serial model (Fig. 11a, SAT enumeration path).
func BenchmarkFig11aMiningSAT(b *testing.B) {
	cases := []struct{ impl, test string }{
		{"msn", "T1"},
		{"lazylist", "Sacr"},
	}
	for _, c := range cases {
		b.Run(c.impl+"/"+c.test, func(b *testing.B) {
			benchCheck(b, c.impl, c.test, checkfence.Options{Model: checkfence.Serial})
		})
	}
}

// BenchmarkFig11aMiningRefset measures the reference-implementation
// enumeration path of Fig. 11a.
func BenchmarkFig11aMiningRefset(b *testing.B) {
	cases := []struct{ impl, test string }{
		{"msn", "Tpc3"},
		{"lazylist", "Sacr2"},
		{"snark", "Dq"},
	}
	for _, c := range cases {
		b.Run(c.impl+"/"+c.test, func(b *testing.B) {
			impl, err := harness.Get(c.impl)
			if err != nil {
				b.Fatal(err)
			}
			test, err := harness.GetTest(impl, c.test)
			if err != nil {
				b.Fatal(err)
			}
			var size int
			for i := 0; i < b.N; i++ {
				set, err := refimpl.Enumerate(impl, test)
				if err != nil {
					b.Fatal(err)
				}
				size = set.Len()
			}
			b.ReportMetric(float64(size), "obs-set")
		})
	}
}

// BenchmarkFig11cRangeAnalysis measures the same check with the range
// analysis on and off (Fig. 11c).
func BenchmarkFig11cRangeAnalysis(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "with"
		if disabled {
			name = "without"
		}
		b.Run(name, func(b *testing.B) {
			benchCheck(b, "msn", "T0", checkfence.Options{
				Model:                checkfence.Relaxed,
				DisableRangeAnalysis: disabled,
			})
		})
	}
}

// BenchmarkFig12Methods compares the observation-set method with the
// commit-point baseline (Fig. 12).
func BenchmarkFig12Methods(b *testing.B) {
	b.Run("observation-set/T0", func(b *testing.B) {
		benchCheck(b, "msn-commit", "T0", checkfence.Options{Model: checkfence.Relaxed})
	})
	b.Run("commit-point/T0", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := commit.Check("msn-commit", "T0", memmodel.Relaxed)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Pass {
				b.Fatalf("unexpected failure: %s", res.Desc)
			}
		}
	})
}

// BenchmarkModelChoice measures the §4.4 observation that the model
// choice has little impact on runtime.
func BenchmarkModelChoice(b *testing.B) {
	for _, m := range []checkfence.Model{checkfence.SequentialConsistency, checkfence.Relaxed} {
		b.Run(m.String(), func(b *testing.B) {
			benchCheck(b, "msn", "Ti2", checkfence.Options{Model: m})
		})
	}
}

// BenchmarkFig2IRIW solves the paper's Fig. 2 litmus execution
// (forbidden on Relaxed because it orders all stores globally).
func BenchmarkFig2IRIW(b *testing.B) {
	var iriw litmus.Test
	for _, t := range litmus.Tests() {
		if t.Name == "iriw" {
			iriw = t
		}
	}
	if iriw.Name == "" {
		b.Fatal("iriw litmus test not found")
	}
	for i := 0; i < b.N; i++ {
		observable, err := iriw.Observable(memmodel.Relaxed)
		if err != nil {
			b.Fatal(err)
		}
		if observable {
			b.Fatal("IRIW must be forbidden on Relaxed")
		}
	}
}

// suiteJobs is the quick suite used by the scheduler benchmarks: one
// small test per Table 1 implementation, each checked under all four
// memory models (the spec is model-independent, so each run mines five
// sets regardless of parallelism).
func suiteJobs() []checkfence.Job {
	pairs := []struct{ impl, test string }{
		{"ms2", "T0"},
		{"msn", "T0"},
		{"lazylist", "Sac"},
		{"harris", "Sac"},
		{"snark", "D0"},
	}
	models := []checkfence.Model{
		checkfence.SequentialConsistency, checkfence.TSO,
		checkfence.PSO, checkfence.Relaxed,
	}
	var jobs []checkfence.Job
	for _, p := range pairs {
		for _, m := range models {
			jobs = append(jobs, checkfence.Job{Impl: p.impl, Test: p.test,
				Opts: checkfence.Options{Model: m}})
		}
	}
	return jobs
}

// runSuiteBench runs the quick suite once at the given parallelism
// (each run gets a fresh spec cache, so mining work is identical) and
// fails the benchmark on any job error.
func runSuiteBench(b *testing.B, parallelism int) []checkfence.SuiteResult {
	b.Helper()
	results := checkfence.CheckSuite(suiteJobs(), checkfence.SuiteOptions{
		Parallelism: parallelism,
	})
	for i, r := range results {
		if r.Err != nil {
			b.Fatalf("job %d (%s/%s): %v", i, r.Job.Impl, r.Job.Test, r.Err)
		}
	}
	return results
}

// BenchmarkSuiteSerial is the baseline: the quick suite on one worker.
func BenchmarkSuiteSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runSuiteBench(b, 1)
	}
}

// BenchmarkSuiteParallel runs the same suite on GOMAXPROCS workers,
// verifies every verdict and observation set matches the serial run
// exactly, and writes the serial-vs-parallel comparison to
// BENCH_suite.json. Wall-clock speedup tracks core count; on a single
// core the value is near 1.
func BenchmarkSuiteParallel(b *testing.B) {
	b.StopTimer()
	serialStart := time.Now()
	serial := runSuiteBench(b, 1)
	serialTime := time.Since(serialStart)
	b.StartTimer()

	var parallel []checkfence.SuiteResult
	parallelStart := time.Now()
	for i := 0; i < b.N; i++ {
		parallel = runSuiteBench(b, 0) // 0 = GOMAXPROCS
	}
	parallelTime := time.Since(parallelStart) / time.Duration(b.N)

	// The parallel engine must be a pure scheduling change: identical
	// verdicts and identical observation sets, job for job.
	for i := range serial {
		s, p := serial[i].Res, parallel[i].Res
		if s.Pass != p.Pass || s.SeqBug != p.SeqBug {
			b.Fatalf("job %d (%s/%s on %v): serial pass=%v/seqbug=%v, parallel pass=%v/seqbug=%v",
				i, serial[i].Job.Impl, serial[i].Job.Test, serial[i].Job.Opts.Model,
				s.Pass, s.SeqBug, p.Pass, p.SeqBug)
		}
		if !s.Spec.Equal(p.Spec) {
			b.Fatalf("job %d: observation sets differ between serial and parallel", i)
		}
	}

	speedup := serialTime.Seconds() / parallelTime.Seconds()
	b.ReportMetric(speedup, "speedup")
	writeSuiteArtifact(b, serial, serialTime, parallelTime, speedup)
}

// writeSuiteArtifact records the serial/parallel comparison in
// BENCH_suite.json (the CI benchmark artifact).
func writeSuiteArtifact(b *testing.B, results []checkfence.SuiteResult,
	serialTime, parallelTime time.Duration, speedup float64) {
	b.Helper()
	type jobRecord struct {
		Impl, Test, Model string
		Pass, SeqBug      bool
		ObsSet            int
	}
	records := make([]jobRecord, len(results))
	for i, r := range results {
		records[i] = jobRecord{
			Impl: r.Job.Impl, Test: r.Job.Test, Model: r.Job.Opts.Model.String(),
			Pass: r.Res.Pass, SeqBug: r.Res.SeqBug, ObsSet: r.Res.Stats.ObsSetSize,
		}
	}
	artifact := struct {
		Jobs            int
		GOMAXPROCS      int
		SerialSeconds   float64
		ParallelSeconds float64
		Speedup         float64
		Results         []jobRecord
	}{
		Jobs:            len(results),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		SerialSeconds:   serialTime.Seconds(),
		ParallelSeconds: parallelTime.Seconds(),
		Speedup:         speedup,
		Results:         records,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_suite.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSpecMiningIterations tracks the mining loop's SAT
// iteration count (one model solve per observation).
func BenchmarkSpecMiningIterations(b *testing.B) {
	var iters int
	for i := 0; i < b.N; i++ {
		res, err := checkfence.Check("msn", "T1", checkfence.Options{Model: checkfence.Serial})
		if err != nil {
			b.Fatal(err)
		}
		iters = res.Stats.MineIterations
	}
	b.ReportMetric(float64(iters), "iterations")
}

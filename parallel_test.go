package checkfence_test

// TestIntraCheckDifferential runs whole checks three ways — serial,
// clause-sharing portfolio, and cube-and-conquer — and requires
// bit-identical verdicts, identical mined observation sets, and valid
// counterexamples. Intra-check parallelism is a scheduling concern;
// any observable difference is a soundness bug.

import (
	"fmt"
	"runtime"
	"testing"

	"checkfence"
)

func TestIntraCheckDifferential(t *testing.T) {
	type pair struct {
		impl, test string
		models     []checkfence.Model
	}
	all := []checkfence.Model{
		checkfence.SequentialConsistency, checkfence.TSO,
		checkfence.PSO, checkfence.Relaxed,
	}
	scRelaxed := []checkfence.Model{checkfence.SequentialConsistency, checkfence.Relaxed}
	pairs := []pair{
		{"ms2", "T0", all},
		{"msn", "T0", all},
		{"lazylist", "Sac", all},
		{"harris", "Sac", scRelaxed},
		{"snark", "D0", scRelaxed},       // fails on relaxed: verdicts must still agree
		{"msn-nofence", "T0", scRelaxed}, // fails: exercises counterexample extraction
		{"ms2-nofence", "T0", scRelaxed},
	}
	if !testing.Short() {
		pairs = append(pairs, pair{"msn", "Ti2", []checkfence.Model{checkfence.Relaxed}})
	}
	// The serial variant comes first in each triple; the others must
	// match it exactly.
	variants := []struct {
		name string
		opts checkfence.Options
	}{
		// Backends are pinned: the differential is about the parallel
		// machinery, which the auto router's small-instance guard would
		// otherwise strip on the easy rows.
		{"serial", checkfence.Options{Backend: checkfence.BackendSAT}},
		{"portfolio", checkfence.Options{Backend: checkfence.BackendPortfolio, Portfolio: 4, ShareClauses: true}},
		{"cube", checkfence.Options{Backend: checkfence.BackendCube, Cube: 4}},
	}

	var jobs []checkfence.Job
	var names []string
	for _, p := range pairs {
		for _, m := range p.models {
			for _, v := range variants {
				opts := v.opts
				opts.Model = m
				// Private caches: every variant must actually mine.
				opts.SpecCache = checkfence.NewSpecCache("")
				jobs = append(jobs, checkfence.Job{Impl: p.impl, Test: p.test, Opts: opts})
				names = append(names, fmt.Sprintf("%s/%s/%s/%s", p.impl, p.test, m, v.name))
			}
		}
	}
	results := checkfence.CheckSuite(jobs, checkfence.SuiteOptions{
		Parallelism: runtime.GOMAXPROCS(0),
	})

	for i := 0; i+2 < len(results); i += 3 {
		serial := results[i]
		if serial.Err != nil {
			t.Errorf("%s: %v", names[i], serial.Err)
			continue
		}
		for off := 1; off <= 2; off++ {
			par, name := results[i+off], names[i+off]
			if par.Err != nil {
				t.Errorf("%s: %v", name, par.Err)
				continue
			}
			if par.Res.Pass != serial.Res.Pass || par.Res.SeqBug != serial.Res.SeqBug {
				t.Errorf("%s: verdict differs from serial: pass=%v seqbug=%v, serial pass=%v seqbug=%v",
					name, par.Res.Pass, par.Res.SeqBug, serial.Res.Pass, serial.Res.SeqBug)
			}
			if (par.Res.Spec == nil) != (serial.Res.Spec == nil) {
				t.Errorf("%s: only one variant mined an observation set", name)
			} else if par.Res.Spec != nil && !par.Res.Spec.Equal(serial.Res.Spec) {
				t.Errorf("%s: observation set differs from serial (%d vs %d)",
					name, par.Res.Spec.Len(), serial.Res.Spec.Len())
			}
			if !par.Res.Pass {
				if par.Res.Cex == nil {
					t.Errorf("%s: failed without a counterexample", name)
				} else if !par.Res.Cex.IsErr && par.Res.Spec != nil && par.Res.Spec.Has(par.Res.Cex.Observation) {
					t.Errorf("%s: counterexample observation is inside the specification", name)
				}
			}
		}
	}
}
